// Package flood implements the naive flooding baseline from the paper's
// introduction: every node rebroadcasts each data packet exactly once, so
// delivery needs no route discovery but costs on the order of N
// transmissions. It exists as the upper-bound comparator and to exercise
// the channel under worst-case load.
package flood

import (
	"mtmrp/internal/bitset"
	"mtmrp/internal/network"
	"mtmrp/internal/packet"
	"mtmrp/internal/rng"
	"mtmrp/internal/sim"
)

// Config tunes the flooding baseline.
type Config struct {
	// Jitter is the uniform delay before a node rebroadcasts, to
	// de-synchronise the broadcast storm. Defaults to 2 ms.
	Jitter sim.Time
}

// DefaultConfig returns the baseline configuration.
func DefaultConfig() Config { return Config{Jitter: 2 * sim.Millisecond} }

// session is the per-session state: a duplicate-suppression bitset indexed
// by DataSeq and the delivery counter. Sessions are few per run, held in a
// linearly-scanned slice and recycled across Reset.
type session struct {
	key     packet.FloodKey
	got     int
	dataSeq uint32
	seen    bitset.Set
}

// pending carries a delayed rebroadcast through the scheduler without a
// closure; blocks recycle through a free list.
type pending struct {
	r *Router
	d packet.Data
}

// Router floods every data packet once. It ignores HELLO/JoinQuery/
// JoinReply traffic and satisfies proto.Router's session API trivially:
// FloodQuery is a no-op that just allocates the session key (flooding
// needs no discovery), and every node acts as a forwarder.
type Router struct {
	cfg      Config
	node     *network.Node
	rnd      *rng.RNG
	sessions []*session
	sessFree []*session
	pendFree []*pending
	nextSeq  uint32
}

// New builds a flooding router.
func New(cfg Config) *Router {
	if cfg.Jitter <= 0 {
		cfg.Jitter = 2 * sim.Millisecond
	}
	return &Router{cfg: cfg}
}

// Name implements proto.Router.
func (r *Router) Name() string { return "Flooding" }

// Attach implements network.Protocol.
func (r *Router) Attach(n *network.Node) {
	r.node = n
	r.rnd = n.Rand.Derive("flood")
}

// Start implements network.Protocol. Flooding needs no initialization.
func (r *Router) Start() {}

// Reset implements proto.Router: rewind to the just-attached state,
// recycling session blocks and re-deriving the RNG from the node's
// (already reseeded) stream.
func (r *Router) Reset() {
	r.node.Rand.DeriveInto("flood", r.rnd)
	r.sessFree = append(r.sessFree, r.sessions...)
	for i := range r.sessions {
		r.sessions[i] = nil
	}
	r.sessions = r.sessions[:0]
	r.nextSeq = 0
}

func (r *Router) sess(key packet.FloodKey) *session {
	for _, s := range r.sessions {
		if s.key == key {
			return s
		}
	}
	return nil
}

func (r *Router) ensureSess(key packet.FloodKey) *session {
	if s := r.sess(key); s != nil {
		return s
	}
	var s *session
	if n := len(r.sessFree); n > 0 {
		s = r.sessFree[n-1]
		r.sessFree = r.sessFree[:n-1]
	} else {
		s = &session{}
	}
	s.key = key
	s.got = 0
	s.dataSeq = 0
	s.seen.Reset()
	r.sessions = append(r.sessions, s)
	return s
}

// Receive implements network.Protocol.
func (r *Router) Receive(p *packet.Packet) {
	if p.Type != packet.TData {
		return
	}
	d := *p.Data
	s := r.ensureSess(d.Key())
	if s.seen.Test(int(d.DataSeq)) {
		return
	}
	s.seen.Set(int(d.DataSeq))
	s.got++
	delay := sim.Time(r.rnd.Uint64n(uint64(r.cfg.Jitter)))
	var pd *pending
	if n := len(r.pendFree); n > 0 {
		pd = r.pendFree[n-1]
		r.pendFree = r.pendFree[:n-1]
	} else {
		pd = &pending{r: r}
	}
	pd.d = d
	r.node.AfterCall(delay, rebroadcastCB, pd, 0)
}

// rebroadcastCB fires the jittered rebroadcast; it checks node liveness
// itself (AfterCall callbacks are not wrapped like After closures).
func rebroadcastCB(arg any, _ int) {
	pd := arg.(*pending)
	r, d := pd.r, pd.d
	pd.d = packet.Data{}
	r.pendFree = append(r.pendFree, pd)
	if r.node.Down() {
		return
	}
	r.node.Send(r.node.Packets().NewData(r.node.ID, d))
}

// FloodQuery implements proto.Router; flooding has no discovery phase.
func (r *Router) FloodQuery(g packet.GroupID) packet.FloodKey {
	r.nextSeq++
	return packet.FloodKey{Source: r.node.ID, Group: g, Seq: r.nextSeq}
}

// SendData implements proto.Router.
func (r *Router) SendData(key packet.FloodKey, payloadLen int) {
	s := r.ensureSess(key)
	s.dataSeq++
	d := packet.Data{
		SourceID:   key.Source,
		GroupID:    key.Group,
		SequenceNo: key.Seq,
		DataSeq:    s.dataSeq,
		PayloadLen: payloadLen,
	}
	s.seen.Set(int(d.DataSeq))
	s.got++
	r.node.Send(r.node.Packets().NewData(r.node.ID, d))
}

// IsForwarder implements proto.Router: every node forwards.
func (r *Router) IsForwarder(key packet.FloodKey) bool { return true }

// Covered implements proto.Router.
func (r *Router) Covered(key packet.FloodKey) bool { return r.GotData(key) }

// GotData implements proto.Router.
func (r *Router) GotData(key packet.FloodKey) bool {
	s := r.sess(key)
	return s != nil && s.got > 0
}

// RepliesHeard implements proto.Router; flooding has no replies.
func (r *Router) RepliesHeard(key packet.FloodKey) int { return 0 }
