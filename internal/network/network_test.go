package network

import (
	"testing"

	"mtmrp/internal/packet"
	"mtmrp/internal/sim"
	"mtmrp/internal/topology"
)

// echoProto records received packets and optionally sends one at start.
type echoProto struct {
	node     *Node
	started  bool
	received []*packet.Packet
	sendOnce bool
}

func (e *echoProto) Attach(n *Node) { e.node = n }
func (e *echoProto) Start() {
	e.started = true
	if e.sendOnce {
		e.node.Send(packet.NewHello(e.node.ID, e.node.Groups()))
	}
}
func (e *echoProto) Receive(p *packet.Packet) { e.received = append(e.received, p) }

func smallTopo(t *testing.T) *topology.Topology {
	t.Helper()
	// 3 nodes in a line, 30 m apart, 40 m range: 0-1, 1-2 connected; 0-2 not.
	topo, err := topology.Grid(3, 1, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestBuildAndDelivery(t *testing.T) {
	topo := smallTopo(t)
	net := New(topo, DefaultConfig(1))
	protos := make([]*echoProto, 3)
	for i := range protos {
		protos[i] = &echoProto{sendOnce: i == 0}
		net.SetProtocol(i, protos[i])
	}
	net.Start()
	net.Run()
	for i, p := range protos {
		if !p.started {
			t.Errorf("protocol %d not started", i)
		}
	}
	if len(protos[1].received) != 1 {
		t.Errorf("node 1 received %d, want 1", len(protos[1].received))
	}
	if len(protos[2].received) != 0 {
		t.Errorf("node 2 (out of range) received %d, want 0", len(protos[2].received))
	}
}

func TestGroupMembership(t *testing.T) {
	topo := smallTopo(t)
	net := New(topo, DefaultConfig(1))
	n := net.Nodes[1]
	if n.InGroup(5) {
		t.Error("fresh node in group")
	}
	n.JoinGroup(5)
	n.JoinGroup(3)
	if !n.InGroup(5) || !n.InGroup(3) {
		t.Error("JoinGroup failed")
	}
	gs := n.Groups()
	if len(gs) != 2 || gs[0] != 3 || gs[1] != 5 {
		t.Errorf("Groups() = %v, want sorted [3 5]", gs)
	}
	n.LeaveGroup(5)
	if n.InGroup(5) {
		t.Error("LeaveGroup failed")
	}
}

func TestTransmitDeliverHooks(t *testing.T) {
	topo := smallTopo(t)
	net := New(topo, DefaultConfig(1))
	var tx, rx int
	net.OnTransmit = func(n *Node, p *packet.Packet) { tx++ }
	net.OnDeliver = func(n *Node, p *packet.Packet) { rx++ }
	for i := 0; i < 3; i++ {
		net.SetProtocol(i, &echoProto{sendOnce: i == 1}) // middle node: 2 neighbors
	}
	net.Start()
	net.Run()
	if tx != 1 || rx != 2 {
		t.Errorf("tx=%d rx=%d, want 1/2", tx, rx)
	}
}

func TestFailedNodeSilent(t *testing.T) {
	topo := smallTopo(t)
	net := New(topo, DefaultConfig(1))
	protos := make([]*echoProto, 3)
	for i := range protos {
		protos[i] = &echoProto{sendOnce: i == 0}
		net.SetProtocol(i, protos[i])
	}
	net.Nodes[1].Fail()
	net.Start()
	net.Run()
	if protos[1].started {
		t.Error("failed node protocol started")
	}
	if len(protos[1].received) != 0 {
		t.Error("failed node received traffic")
	}
	// Failed node cannot send either.
	net.Nodes[1].Send(packet.NewHello(1, nil))
	net.Run()
	if len(protos[0].received) != 0 {
		t.Error("frame escaped a failed node")
	}
	// Recovery restores reception.
	net.Nodes[1].Recover()
	if net.Nodes[1].Down() {
		t.Error("Recover did not clear down flag")
	}
	net.Nodes[0].Send(packet.NewHello(0, nil))
	net.Run()
	if len(protos[1].received) != 1 {
		t.Errorf("recovered node received %d, want 1", len(protos[1].received))
	}
}

func TestFailedNodeSkipsTimers(t *testing.T) {
	topo := smallTopo(t)
	net := New(topo, DefaultConfig(1))
	fired := false
	net.Nodes[0].After(10*sim.Millisecond, func() { fired = true })
	net.Nodes[0].Fail()
	net.Run()
	if fired {
		t.Error("timer fired on failed node")
	}
}

func TestSendStampsFrom(t *testing.T) {
	topo := smallTopo(t)
	net := New(topo, DefaultConfig(1))
	p2 := &echoProto{}
	net.SetProtocol(0, p2)
	pkt := packet.NewHello(99, nil) // wrong From on purpose
	net.Nodes[1].Send(pkt)
	net.Run()
	if len(p2.received) != 1 || p2.received[0].From != 1 {
		t.Errorf("From not stamped: %+v", p2.received)
	}
}

func TestNeighborIDs(t *testing.T) {
	topo := smallTopo(t)
	net := New(topo, DefaultConfig(1))
	ids := net.Nodes[1].NeighborIDs()
	if len(ids) != 2 {
		t.Errorf("NeighborIDs = %v", ids)
	}
}

func TestIdealMACNetwork(t *testing.T) {
	topo := smallTopo(t)
	cfg := DefaultConfig(1)
	cfg.MAC = MACIdeal
	cfg.DisableCollisions = true
	net := New(topo, cfg)
	protos := make([]*echoProto, 3)
	for i := range protos {
		protos[i] = &echoProto{sendOnce: i != 1} // both ends transmit at t=0
		net.SetProtocol(i, protos[i])
	}
	net.Start()
	net.Run()
	// The ends transmit simultaneously; with collisions disabled the idle
	// middle node decodes both overlapping frames. (Half-duplex still
	// applies: had the middle been transmitting too, it would hear none.)
	if len(protos[1].received) != 2 {
		t.Errorf("middle received %d, want 2", len(protos[1].received))
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() uint64 {
		topo := smallTopo(t)
		net := New(topo, DefaultConfig(7))
		for i := 0; i < 3; i++ {
			net.SetProtocol(i, &echoProto{sendOnce: true})
		}
		net.Start()
		net.Run()
		return net.Chan.Stats().Transmissions*1000 + net.Chan.Stats().Deliveries
	}
	if runOnce() != runOnce() {
		t.Error("same-seed runs diverged")
	}
}
