// Package network wires topology, channel, MAC and routing protocol into a
// runnable simulated sensor network, and exposes the observation hooks the
// metrics layer consumes.
package network

import (
	"fmt"

	"mtmrp/internal/channel"
	"mtmrp/internal/mac"
	"mtmrp/internal/packet"
	"mtmrp/internal/radio"
	"mtmrp/internal/rng"
	"mtmrp/internal/sim"
	"mtmrp/internal/topology"
)

// MACKind selects the MAC layer for a run.
type MACKind uint8

// Available MAC layers.
const (
	MACCSMA  MACKind = iota // 802.11-style contention MAC (paper's setting)
	MACIdeal                // contention-free, for deterministic tests
)

// Config parameterises a network build.
type Config struct {
	Radio             radio.Params
	MAC               MACKind
	CSMA              mac.CSMAConfig
	DisableCollisions bool
	// ShadowingSigmaDB enables per-frame log-normal fading (0 = the
	// paper's deterministic disc).
	ShadowingSigmaDB float64
	Seed             uint64

	// Links, when set, is a precomputed (typically shared) link table for
	// the topology under Radio. New skips the per-build link computation and
	// wires the channel directly over it. The table must match the topology
	// size and the Radio parameters; New panics on a mismatch rather than
	// silently simulating a different PHY.
	Links *channel.LinkTable

	// Regions, when non-nil, builds the network on the region-parallel
	// engine: one simulator and channel shard per region of the plan, with
	// cross-region transmissions carried as border messages. Requires the
	// CSMA MAC (the engine's lookahead floor is the DIFS reaction delay;
	// the ideal MAC transmits synchronously and has no floor) and the
	// deterministic disc (no shadowing). Workers is the worker-thread
	// count Run uses (minimum 1).
	Regions *channel.RegionPlan
	Workers int
}

// DefaultConfig is the paper's PHY/MAC: two-ray ground sized to a 40 m
// range, carrier sensing at 2.2x, 802.11 CSMA.
func DefaultConfig(seed uint64) Config {
	return Config{
		Radio: radio.MustDefault80211Params(40, 2.2),
		MAC:   MACCSMA,
		CSMA:  mac.DefaultCSMAConfig(),
		Seed:  seed,
	}
}

// Protocol is the routing layer contract. Attach is called exactly once
// while the network is built; Start is called when the simulation begins.
type Protocol interface {
	Attach(n *Node)
	Start()
	Receive(p *packet.Packet)
}

// Node is one sensor node: identity, position, group membership, MAC and
// protocol instance.
type Node struct {
	ID       packet.NodeID
	Pos      int // index into the topology (== int(ID))
	net      *Network
	sim      *sim.Simulator  // the node's scheduler: Network.Sim, or its region's
	pkt      *packet.Factory // the node's frame pool: shared, or its region's
	mac      mac.MAC
	proto    Protocol
	groups   []packet.GroupID // sorted memberships (small; linear scan)
	down     bool
	Rand     *rng.RNG // per-node substream for protocol jitter
	rngLabel string   // precomputed "node-i" derivation key for Reset
}

// Network owns the simulation.
type Network struct {
	// Sim is the scheduler of a serial network. On a region-parallel build
	// it is nil — there is one simulator per region — and callers go
	// through SimFor, Run, Processed and AllStats instead; a stray serial
	// access fails loudly rather than silently reading one region's clock.
	Sim   *sim.Simulator
	Topo  *topology.Topology
	Chan  *channel.Channel
	Nodes []*Node
	Rand  *rng.RNG

	// Parallel-build state (nil/empty on serial networks).
	Engine  *sim.Engine
	Plan    *channel.RegionPlan
	Shards  []*channel.Channel
	workers int
	pools   []*packet.Factory // per-region frame factories

	root     rng.RNG         // seed material all substreams derive from
	chanRand *rng.RNG        // the channel's shadowing stream (reseeded on Reset)
	lossRand *rng.RNG        // the channel's loss-model stream (reseeded on Reset)
	pkt      *packet.Factory // pooled frames shared by the whole simulation

	// OnTransmit observes every frame put on the air (after MAC).
	OnTransmit func(from *Node, p *packet.Packet)
	// OnDeliver observes every frame successfully received, before the
	// protocol handles it.
	OnDeliver func(to *Node, p *packet.Packet)
}

// New builds a network over the topology. Protocols are attached
// separately with SetProtocol so one network builder serves every routing
// scheme.
func New(topo *topology.Topology, cfg Config) *Network {
	s := sim.New()
	net := &Network{
		Sim:   s,
		Topo:  topo,
		Nodes: make([]*Node, topo.N()),
		pkt:   packet.NewFactory(),
	}
	net.root.Seed(cfg.Seed)
	net.chanRand = net.root.Derive("channel")
	// The loss stream is always derived — Derive is a pure function of the
	// seed material and does not advance the parent, so carrying the stream
	// even when no loss model is configured cannot perturb any other stream.
	net.lossRand = net.root.Derive("loss")
	net.Rand = net.root.Derive("network")
	chCfg := channel.Config{
		DisableCollisions: cfg.DisableCollisions,
		ShadowingSigmaDB:  cfg.ShadowingSigmaDB,
		Rand:              net.chanRand,
		LossRand:          net.lossRand,
		Pool:              net.pkt,
	}
	links := cfg.Links
	if links == nil {
		links = channel.NewLinkTable(topo.Positions, cfg.Radio)
	} else {
		if links.N() != topo.N() {
			panic(fmt.Sprintf("network: link table built for %d nodes, topology has %d", links.N(), topo.N()))
		}
		// Model instances are compared by name: radioFor-style constructors
		// allocate a fresh (identical) model per call, so pointer equality
		// would reject tables that describe the same PHY.
		lp, rp := links.Params(), cfg.Radio
		if lp.TxPower != rp.TxPower || lp.RXThresh != rp.RXThresh ||
			lp.CSThresh != rp.CSThresh || lp.BitRate != rp.BitRate ||
			lp.Model.Name() != rp.Model.Name() {
			panic("network: link table radio parameters differ from Config.Radio")
		}
	}
	onAir := func(from int, p *packet.Packet) {
		n := net.Nodes[from]
		if net.OnTransmit != nil {
			net.OnTransmit(n, p)
		}
	}
	onDeliver := func(to int, p *packet.Packet) {
		n := net.Nodes[to]
		if n.down {
			return
		}
		if net.OnDeliver != nil {
			net.OnDeliver(n, p)
		}
	}

	// Region-parallel build: one simulator and channel shard per region,
	// one frame factory per region (factories are single-goroutine), the
	// DIFS reaction floor as the engine's lookahead floor.
	if plan := cfg.Regions; plan != nil {
		if cfg.MAC != MACCSMA {
			panic("network: the parallel engine requires the CSMA MAC")
		}
		if cfg.ShadowingSigmaDB > 0 {
			panic("network: shadowing is serial-only")
		}
		if plan.N != topo.N() {
			panic(fmt.Sprintf("network: region plan for %d nodes, topology has %d", plan.N, topo.N()))
		}
		net.Sim = nil
		net.Plan = plan
		net.workers = max(cfg.Workers, 1)
		net.Engine = sim.NewEngine(sim.EngineConfig{
			Regions:   plan.NumRegions(),
			Neighbors: plan.Neighbors,
			Lookahead: plan.Lookahead,
			Floor:     cfg.CSMA.DIFS,
		})
		net.pools = make([]*packet.Factory, plan.NumRegions())
		net.pools[0] = net.pkt
		for r := 1; r < len(net.pools); r++ {
			net.pools[r] = packet.NewFactory()
		}
		net.Shards = channel.NewShards(net.Engine, plan, links, chCfg, net.pools)
		for _, sh := range net.Shards {
			sh.OnAir = onAir
			sh.OnDeliver = onDeliver
		}
		net.Chan = net.Shards[0]
		for i := 0; i < topo.N(); i++ {
			r := plan.RegionOf[i]
			net.buildNode(i, net.Engine.Region(int(r)), net.Shards[r], net.pools[r], cfg)
		}
		return net
	}

	ch := channel.NewWithTable(s, links, chCfg)
	net.Chan = ch
	ch.OnAir = onAir
	ch.OnDeliver = onDeliver
	for i := 0; i < topo.N(); i++ {
		net.buildNode(i, s, ch, net.pkt, cfg)
	}
	return net
}

// buildNode constructs node i on the given scheduler, channel (shard) and
// frame factory — the whole network's on a serial build, its region's on a
// parallel one.
func (net *Network) buildNode(i int, s *sim.Simulator, ch *channel.Channel, pool *packet.Factory, cfg Config) {
	label := fmt.Sprintf("node-%d", i)
	n := &Node{
		ID:       packet.NodeID(i),
		Pos:      i,
		net:      net,
		sim:      s,
		pkt:      pool,
		Rand:     net.root.Derive(label),
		rngLabel: label,
	}
	switch cfg.MAC {
	case MACCSMA:
		n.mac = mac.NewCSMA(s, ch, i, cfg.CSMA, n.Rand.Derive("mac"))
	case MACIdeal:
		n.mac = mac.NewIdeal(s, ch, i)
	default:
		panic(fmt.Sprintf("network: unknown MAC kind %d", cfg.MAC))
	}
	net.Nodes[i] = n
	n.mac.SetUpper(func(p *packet.Packet) { net.deliver(i, p) })
}

func (net *Network) deliver(i int, p *packet.Packet) {
	n := net.Nodes[i]
	if n.down || n.proto == nil {
		return
	}
	n.proto.Receive(p)
}

// SetProtocol installs the routing protocol on node i.
func (net *Network) SetProtocol(i int, p Protocol) {
	n := net.Nodes[i]
	n.proto = p
	p.Attach(n)
}

// Start invokes Start on every protocol instance. Call after all
// SetProtocol calls and before running the simulator.
func (net *Network) Start() {
	for _, n := range net.Nodes {
		if n.proto != nil && !n.down {
			n.proto.Start()
		}
	}
}

// Reset rewinds the network to the state New would have produced for
// (topo, links, seed), reusing every long-lived structure: the simulator's
// pools, the channel (and its arrival free list), the MAC instances, the
// packet factory and the per-node RNGs. The topology must have the same
// node count and radio parameters as the one the network was built with.
//
// Every random substream is re-derived from the new seed exactly as New
// derives it (Derive is a pure function of seed material and name), so a
// reset network is bit-identical to a freshly built one. Protocol state is
// not touched here — callers reset their routers separately.
func (net *Network) Reset(topo *topology.Topology, links *channel.LinkTable, seed uint64) {
	if topo.N() != len(net.Nodes) {
		panic(fmt.Sprintf("network: Reset with %d-node topology, network has %d", topo.N(), len(net.Nodes)))
	}
	if links == nil {
		panic("network: Reset requires a link table")
	}
	if net.Engine != nil {
		// A new topology needs a new region plan (and hence new per-node
		// simulator/shard bindings); parallel sessions are built fresh.
		panic("network: Reset is not supported on a region-parallel build")
	}
	net.Sim.Reset()
	net.root.Seed(seed)
	net.root.DeriveInto("channel", net.chanRand)
	net.root.DeriveInto("loss", net.lossRand)
	net.root.DeriveInto("network", net.Rand)
	net.Topo = topo
	net.Chan.Reset(links)
	for _, n := range net.Nodes {
		net.root.DeriveInto(n.rngLabel, n.Rand)
		n.groups = n.groups[:0]
		n.down = false
		n.mac.Reset(n.Rand)
	}
}

// SetLoss installs (or, with nil, removes) a Gilbert–Elliott bursty-loss
// model on the channel. Per-run: Reset clears the chain state, so callers
// re-apply the model after every Reset.
func (net *Network) SetLoss(cfg *channel.LossConfig) { net.Chan.SetLoss(cfg) }

// Degrade marks node i's links as degraded (both directions); frames
// touching a degraded endpoint drop with the loss model's DegradedDrop
// probability. Restore with Degrade(i, false).
func (net *Network) Degrade(i int, on bool) { net.Chan.SetDegraded(i, on) }

// Packets returns the simulation's shared frame factory; protocols build
// their outgoing frames through it so the channel can recycle them.
func (net *Network) Packets() *packet.Factory { return net.pkt }

// Run drives the simulation until the event queue drains — the serial
// simulator's, or every region's under the conservative protocol.
func (net *Network) Run() {
	if net.Engine != nil {
		net.Engine.Run(net.workers)
		return
	}
	net.Sim.Run()
}

// RunUntil drives the simulation up to virtual time t (serial only: the
// parallel engine always drains completely, which is how every session
// phase runs).
func (net *Network) RunUntil(t sim.Time) { net.Sim.RunUntil(t) }

// SimFor returns the scheduler that drives node i: the network simulator,
// or the node's region simulator on a parallel build. Between Run calls
// all region clocks agree, so cross-phase scheduling through any node's
// simulator is consistent.
func (net *Network) SimFor(i int) *sim.Simulator { return net.Nodes[i].sim }

// Processed sums events executed so far across the whole simulation.
func (net *Network) Processed() uint64 {
	if net.Engine != nil {
		return net.Engine.Processed()
	}
	return net.Sim.Processed()
}

// AllStats returns the simulation's merged scheduler counters.
func (net *Network) AllStats() sim.Stats {
	if net.Engine != nil {
		return net.Engine.Stats()
	}
	return net.Sim.Stats()
}

// --- Node services used by protocols ---

// Net returns the owning network.
func (n *Node) Net() *Network { return n.net }

// Proto returns the node's protocol instance (nil before SetProtocol).
func (n *Node) Proto() Protocol { return n.proto }

// Send broadcasts a frame via the MAC. Downed nodes silently drop.
func (n *Node) Send(p *packet.Packet) {
	if n.down {
		return
	}
	p.From = n.ID
	n.mac.Send(p)
}

// After schedules fn on the node's simulator, skipping execution if the
// node has failed by then.
func (n *Node) After(d sim.Time, fn func()) sim.Event {
	return n.sim.After(d, func() {
		if !n.down {
			fn()
		}
	})
}

// AfterCall is the closure-free counterpart of After for protocol hot
// paths. Unlike After, it does not wrap the callback in a liveness check:
// the callee must test Down() itself if the node may fail mid-simulation.
func (n *Node) AfterCall(d sim.Time, cb sim.Callback, arg any, i int) sim.Event {
	return n.sim.AfterCall(d, cb, arg, i)
}

// Packets returns the node's frame factory: the simulation-wide pool, or
// the node's region pool on a parallel build.
func (n *Node) Packets() *packet.Factory { return n.pkt }

// Now returns the node's current virtual time (its region clock on a
// parallel build).
func (n *Node) Now() sim.Time { return n.sim.Now() }

// JoinGroup adds the node to a multicast group (a "multicast receiver").
func (n *Node) JoinGroup(g packet.GroupID) {
	for i, x := range n.groups {
		if x == g {
			return
		}
		if x > g {
			n.groups = append(n.groups, 0)
			copy(n.groups[i+1:], n.groups[i:])
			n.groups[i] = g
			return
		}
	}
	n.groups = append(n.groups, g)
}

// LeaveGroup removes the node from a multicast group.
func (n *Node) LeaveGroup(g packet.GroupID) {
	for i, x := range n.groups {
		if x == g {
			n.groups = append(n.groups[:i], n.groups[i+1:]...)
			return
		}
	}
}

// InGroup reports group membership.
func (n *Node) InGroup(g packet.GroupID) bool {
	for _, x := range n.groups {
		if x == g {
			return true
		}
	}
	return false
}

// Groups returns the node's memberships in sorted order. The slice is the
// node's own storage: callers must not modify or retain it (HELLO encoding
// copies it into the frame).
func (n *Node) Groups() []packet.GroupID { return n.groups }

// Fail takes the node down: it stops sending, receiving and timing out.
// Used by the failure-injection tests and the route-repair extension.
func (n *Node) Fail() { n.down = true }

// Recover brings a failed node back (fresh protocol state is the caller's
// concern).
func (n *Node) Recover() { n.down = false }

// Down reports whether the node has failed.
func (n *Node) Down() bool { return n.down }

// NeighborIDs returns the topology neighbors of this node.
func (n *Node) NeighborIDs() []packet.NodeID {
	ns := n.net.Topo.Neighbors(n.Pos)
	out := make([]packet.NodeID, len(ns))
	for i, v := range ns {
		out[i] = packet.NodeID(v)
	}
	return out
}
