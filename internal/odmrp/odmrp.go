// Package odmrp implements the ODMRP baseline (Lee, Su & Gerla, "On-demand
// multicast routing protocol in multihop wireless mobile networks") in the
// single-session form the paper compares against: JoinQuery flooding with
// plain broadcast jitter, JoinReplys returning along reverse shortest-delay
// paths, and the union of those reverse paths forming the forwarding group.
//
// ODMRP has no destination bias, no coverage tracking and no overhearing:
// a node's upstream is simply whichever neighbor's JoinQuery copy won the
// race, so the forwarding group is larger than MTMRP's — the gap the
// paper's Figures 5–6 quantify.
package odmrp

import (
	"mtmrp/internal/packet"
	"mtmrp/internal/proto"
	"mtmrp/internal/sim"
)

// Config carries ODMRP's tuning knobs.
type Config struct {
	// Jitter is the uniform broadcast jitter applied before rebroadcasting
	// a JoinQuery; standard ODMRP implementations add it to de-synchronise
	// the flood. Defaults to 1 ms.
	Jitter sim.Time
	// Proto carries the shared timing configuration.
	Proto proto.Config
}

// DefaultConfig returns the baseline configuration.
func DefaultConfig() Config {
	return Config{Jitter: sim.Millisecond, Proto: proto.DefaultConfig()}
}

// Router is an ODMRP instance for one node.
type Router struct {
	*proto.Base
	cfg Config
}

// New builds an ODMRP router.
func New(cfg Config) *Router {
	if cfg.Jitter <= 0 {
		cfg.Jitter = sim.Millisecond
	}
	r := &Router{cfg: cfg}
	r.Base = proto.NewBase("ODMRP", cfg.Proto, proto.Hooks{
		QueryDelay: r.queryDelay,
	})
	return r
}

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// SetBackoff retunes the backoff in place for session reuse; ODMRP has no
// N term, so only the jitter width (the sweep's δ) applies.
func (r *Router) SetBackoff(_ int, delta sim.Time) {
	if delta > 0 {
		r.cfg.Jitter = delta
	}
}

func (r *Router) queryDelay(b *proto.Base, q packet.JoinQuery, from packet.NodeID) sim.Time {
	return b.Uniform(0, r.cfg.Jitter)
}

var _ proto.Router = (*Router)(nil)
