package odmrp

import (
	"testing"

	"mtmrp/internal/network"
	"mtmrp/internal/packet"
	"mtmrp/internal/sim"
	"mtmrp/internal/topology"
)

func lineNet(t *testing.T, n int) (*network.Network, []*Router) {
	t.Helper()
	topo, err := topology.Grid(n, 1, float64((n-1)*30), 40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig(1)
	cfg.MAC = network.MACIdeal
	cfg.DisableCollisions = true
	net := network.New(topo, cfg)
	routers := make([]*Router, n)
	for i := 0; i < n; i++ {
		routers[i] = New(DefaultConfig())
		net.SetProtocol(i, routers[i])
	}
	return net, routers
}

func TestName(t *testing.T) {
	if New(DefaultConfig()).Name() != "ODMRP" {
		t.Error("name")
	}
}

func TestDefaultJitterApplied(t *testing.T) {
	r := New(Config{}) // zero jitter must be defaulted
	if r.Config().Jitter != sim.Millisecond {
		t.Errorf("Jitter = %v", r.Config().Jitter)
	}
}

func TestTreeAndDelivery(t *testing.T) {
	net, routers := lineNet(t, 5)
	net.Nodes[4].JoinGroup(1)
	net.Start()
	net.Run()
	key := routers[0].FloodQuery(1)
	net.Run()
	for i := 1; i <= 3; i++ {
		if !routers[i].IsForwarder(key) {
			t.Errorf("node %d should forward", i)
		}
	}
	routers[0].SendData(key, 16)
	net.Run()
	if !routers[4].GotData(key) {
		t.Error("receiver missed data")
	}
}

func TestNoOverhearingState(t *testing.T) {
	// ODMRP must not mark covered/forwarder neighbors from overheard JRs.
	net, routers := lineNet(t, 4)
	net.Nodes[3].JoinGroup(1)
	net.Start()
	net.Run()
	key := routers[0].FloodQuery(1)
	net.Run()
	// Node 3 overheard node 2 relaying its JR; without Overhear, no mark.
	if e := routers[3].NT.Entry(2); e != nil && e.Forwarder(key) {
		t.Error("ODMRP must not track forwarder neighbors")
	}
}

func TestQueryDelayWithinJitter(t *testing.T) {
	net, routers := lineNet(t, 2)
	_ = net
	r := routers[0]
	q := packet.JoinQuery{SourceID: 1, GroupID: 1, SequenceNo: 1}
	for i := 0; i < 100; i++ {
		d := r.queryDelay(r.Base, q, 1)
		if d < 0 || d >= r.Config().Jitter {
			t.Fatalf("delay %v outside [0, jitter)", d)
		}
	}
}
