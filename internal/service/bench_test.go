package service

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"mtmrp/internal/experiment"
)

// TestFig5CacheHitP50 asserts the serving acceptance bar directly: once a
// Figure-5 sweep is cached, the median hit must come back in under a
// millisecond (in practice it is a mutex + map lookup, a few µs). The
// sweep keeps the full Fig-5 shape — all twelve sizes, all four protocols
// — at a reduced round count so tier-1 stays fast; MTMRP_FULL_FIG5=1 runs
// the paper's full 100-round study (the CI service smoke does, over HTTP).
func TestFig5CacheHitP50(t *testing.T) {
	spec := experiment.SweepSpec{Runs: 10}
	if os.Getenv("MTMRP_FULL_FIG5") != "" {
		spec.Runs = 100
	}
	svc := newTestService(t, Config{})
	if _, err := svc.Sweep(spec); err != nil {
		t.Fatal(err)
	}

	const samples = 101
	durs := make([]time.Duration, samples)
	for i := range durs {
		start := time.Now()
		res, err := svc.Sweep(spec)
		durs[i] = time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Hit {
			t.Fatalf("sample %d was not a cache hit", i)
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	p50 := durs[samples/2]
	t.Logf("cache hit latency: p50 %v, min %v, max %v", p50, durs[0], durs[samples-1])
	if p50 >= time.Millisecond {
		t.Errorf("cache hit p50 = %v, want < 1ms", p50)
	}
}

// BenchmarkServiceCacheHit measures the full serve path for a cached
// sweep: key derivation (canonicalize + hash) plus the LRU lookup.
func BenchmarkServiceCacheHit(b *testing.B) {
	svc, err := New(Config{SweepWorkers: 2})
	if err != nil {
		b.Fatal(err)
	}
	spec := experiment.SweepSpec{
		Topo: "grid", Sizes: []int{5, 10}, Runs: 2, Seed: 42,
		Protocols: []string{"mtmrp", "odmrp"},
	}
	if _, err := svc.Sweep(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.Sweep(spec)
		if err != nil || !res.Hit {
			b.Fatalf("iteration %d: hit=%v err=%v", i, res.Hit, err)
		}
	}
}

// BenchmarkServiceStoreHit measures a hit served from the on-disk store
// (cache evicted every time): read + CRC check + LRU refill.
func BenchmarkServiceStoreHit(b *testing.B) {
	dir := b.TempDir()
	svc, err := New(Config{StorePath: filepath.Join(dir, "results.store"), SweepWorkers: 2, CacheEntries: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	specA := experiment.SweepSpec{Topo: "grid", Sizes: []int{5}, Runs: 2, Seed: 1, Protocols: []string{"mtmrp"}}
	specB := specA
	specB.Seed = 2
	if _, err := svc.Sweep(specA); err != nil {
		b.Fatal(err)
	}
	if _, err := svc.Sweep(specB); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternating keys with a 1-entry cache forces a store read each time.
		spec := specA
		if i%2 == 1 {
			spec = specB
		}
		res, err := svc.Sweep(spec)
		if err != nil || res.Source != "store" {
			b.Fatalf("iteration %d: source=%q err=%v", i, res.Source, err)
		}
	}
}

// BenchmarkServiceSweepMiss measures the cold path end to end for a small
// sweep: canonicalize, hash, execute on pooled sessions, marshal, append
// to the store, fill the cache.
func BenchmarkServiceSweepMiss(b *testing.B) {
	dir := b.TempDir()
	svc, err := New(Config{StorePath: filepath.Join(dir, "results.store"), SweepWorkers: 2, WarmPools: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := experiment.SweepSpec{
			Topo: "grid", Sizes: []int{5, 10}, Runs: 2, Seed: uint64(i + 1),
			Protocols: []string{"mtmrp", "odmrp"},
		}
		res, err := svc.Sweep(spec)
		if err != nil || res.Hit {
			b.Fatalf("iteration %d: hit=%v err=%v", i, res.Hit, err)
		}
	}
}

// BenchmarkSingleflightContention measures Do under heavy duplication:
// every parallel caller asks for the same key, so throughput is bounded by
// the collapse bookkeeping, not the (trivial) compute.
func BenchmarkSingleflightContention(b *testing.B) {
	var g flightGroup
	payload := []byte("x")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := g.Do("hot", func() ([]byte, error) { return payload, nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
