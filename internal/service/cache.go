package service

import (
	"container/list"
	"sync"
)

// lruCache is the in-memory result cache: key → payload bytes with
// least-recently-used eviction by entry count. Payloads are immutable
// (marshalled once on computation), so Get returns the shared slice —
// callers only ever write it to a response.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	hits, misses, evictions uint64
}

type lruEntry struct {
	key     string
	payload []byte
}

// newLRU returns a cache holding at most capEntries payloads.
func newLRU(capEntries int) *lruCache {
	if capEntries <= 0 {
		capEntries = 256
	}
	return &lruCache{cap: capEntries, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached payload and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).payload, true
}

// Add inserts (or refreshes) a payload, evicting the least recently used
// entries beyond capacity.
func (c *lruCache) Add(key string, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, payload: payload})
	c.bytes += int64(len(payload))
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		e := back.Value.(*lruEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= int64(len(e.payload))
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the entry count, resident bytes and the hit/miss/eviction
// counters.
func (c *lruCache) Stats() (entries int, bytes int64, hits, misses, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.hits, c.misses, c.evictions
}
