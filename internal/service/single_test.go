package service

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCollapse checks the core singleflight contract: N concurrent
// callers for one key share exactly one execution. The compute is gated so
// the test releases it only after every duplicate has attached — the
// collapse is asserted deterministically, not probabilistically.
func TestFlightCollapse(t *testing.T) {
	var g flightGroup
	const callers = 8
	gate := make(chan struct{})
	var executions atomic.Uint64

	results := make([][]byte, callers)
	shared := make([]bool, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, sh, err := g.Do("k", func() ([]byte, error) {
				<-gate
				executions.Add(1)
				return []byte("result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shared[i] = p, sh
		}(i)
	}
	// Release only once all 7 duplicates are blocked on the leader.
	deadline := time.Now().Add(5 * time.Second)
	for g.Waiters("k") < callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d waiters attached", g.Waiters("k"))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("%d executions for %d concurrent callers, want 1", n, callers)
	}
	nShared := 0
	for i := range results {
		if string(results[i]) != "result" {
			t.Fatalf("caller %d got %q", i, results[i])
		}
		if shared[i] {
			nShared++
		}
	}
	if nShared != callers-1 {
		t.Errorf("%d callers marked shared, want %d", nShared, callers-1)
	}
}

// TestFlightSequentialReexecutes checks that the collapse window is only
// the in-flight duration: a call after completion runs the function again
// (the cache, not the singleflight, is the service's memory).
func TestFlightSequentialReexecutes(t *testing.T) {
	var g flightGroup
	runs := 0
	for i := 0; i < 3; i++ {
		p, shared, err := g.Do("k", func() ([]byte, error) {
			runs++
			return []byte{byte(runs)}, nil
		})
		if err != nil || shared || len(p) != 1 || p[0] != byte(i+1) {
			t.Fatalf("call %d: p=%v shared=%v err=%v", i, p, shared, err)
		}
	}
	if runs != 3 {
		t.Errorf("sequential calls ran %d times, want 3", runs)
	}
}

// TestFlightKeysIndependent checks that different keys never share an
// execution.
func TestFlightKeysIndependent(t *testing.T) {
	var g flightGroup
	var wg sync.WaitGroup
	var runs atomic.Uint64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, shared, err := g.Do(string(rune('a'+i)), func() ([]byte, error) {
				runs.Add(1)
				time.Sleep(5 * time.Millisecond)
				return nil, nil
			})
			if err != nil || shared {
				t.Errorf("key %d: shared=%v err=%v", i, shared, err)
			}
		}(i)
	}
	wg.Wait()
	if n := runs.Load(); n != 4 {
		t.Errorf("%d executions for 4 distinct keys, want 4", n)
	}
}
