package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mtmrp/internal/experiment"
)

// fastFanout returns a FanoutConfig tuned so retry schedules complete in
// test time rather than operator time.
func fastFanout(t *testing.T, peers ...string) FanoutConfig {
	t.Helper()
	return FanoutConfig{
		Peers:       peers,
		Timeout:     30 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Logf:        t.Logf,
	}
}

// subOwners computes which peer owns each of spec's sub-sweeps, so tests
// can assert routing outcomes without hard-coding hash values.
func subOwners(t *testing.T, spec experiment.SweepSpec, peers int) []int {
	t.Helper()
	subs, err := spec.Split()
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]int, len(subs))
	for i, sub := range subs {
		key, err := sub.Key()
		if err != nil {
			t.Fatal(err)
		}
		owners[i] = Shard{Count: peers}.Owner(key)
	}
	return owners
}

// TestFanoutComposesBitIdentical is the tentpole property: a Figure-5
// sweep fanned out over two sharded peers and composed by the coordinator
// is byte-identical to the same sweep computed by a single instance, the
// coordinator itself computes nothing, and a repeat submission is a plain
// cache hit on the composed payload.
func TestFanoutComposesBitIdentical(t *testing.T) {
	spec := tinySweep()
	single := newTestService(t, Config{})
	want, err := single.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}

	shard0 := newTestService(t, Config{Shard: Shard{Index: 0, Count: 2}})
	shard1 := newTestService(t, Config{Shard: Shard{Index: 1, Count: 2}})
	ts0 := httptest.NewServer(shard0.Handler())
	defer ts0.Close()
	ts1 := httptest.NewServer(shard1.Handler())
	defer ts1.Close()

	front := newTestService(t, Config{})
	fan, err := NewFanout(front, fastFanout(t, ts0.URL, ts1.URL))
	if err != nil {
		t.Fatal(err)
	}
	coord := httptest.NewServer(fan.Handler())
	defer coord.Close()

	body, _ := json.Marshal(spec)
	resp, err := http.Post(coord.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fanned-out sweep: status %d: %s", resp.StatusCode, got)
	}
	if src := resp.Header.Get("X-Mtmrd-Source"); src != "composed" {
		t.Fatalf("X-Mtmrd-Source = %q, want composed", src)
	}
	if !bytes.Equal(got, want.Payload) {
		t.Fatal("composed payload is not byte-identical to the single-instance run")
	}
	if c := front.StatsSnapshot().Computes; c != 0 {
		t.Fatalf("coordinator computed %d sweeps locally, want 0", c)
	}

	// A repeat submission hits the composed-payload cache.
	resp, err = http.Post(coord.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	again := readBody(t, resp)
	if c := resp.Header.Get("X-Mtmrd-Cache"); c != "hit" {
		t.Fatalf("repeat submission: X-Mtmrd-Cache = %q, want hit", c)
	}
	if !bytes.Equal(again, want.Payload) {
		t.Fatal("cached composed payload diverged")
	}

	// The stats endpoint reports the fanout section.
	resp, stats := getResp(t, coord.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(stats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Fanout == nil {
		t.Fatal("stats missing fanout section")
	}
	if st.Fanout.SubJobs < 2 || st.Fanout.Composed != 1 || len(st.Fanout.Peers) != 2 {
		t.Fatalf("fanout stats = %+v", st.Fanout)
	}
}

// TestFanoutComposesFaultKind runs the same bit-identity check for a
// registry kind whose axis is failure fractions rather than group sizes.
func TestFanoutComposesFaultKind(t *testing.T) {
	spec := experiment.SweepSpec{Kind: "fault", FailFractions: []float64{0, 0.2},
		Runs: 1, GroupSize: 5, Packets: 2, Seed: 7, Protocols: []string{"mtmrp", "odmrp"}}
	single := newTestService(t, Config{})
	want, err := single.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}

	shard0 := newTestService(t, Config{Shard: Shard{Index: 0, Count: 2}})
	shard1 := newTestService(t, Config{Shard: Shard{Index: 1, Count: 2}})
	ts0 := httptest.NewServer(shard0.Handler())
	defer ts0.Close()
	ts1 := httptest.NewServer(shard1.Handler())
	defer ts1.Close()

	fan, err := NewFanout(newTestService(t, Config{}), fastFanout(t, ts0.URL, ts1.URL))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fan.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "composed" || !bytes.Equal(res.Payload, want.Payload) {
		t.Fatalf("fault-kind fan-out: source %q, byte-identical %v",
			res.Source, bytes.Equal(res.Payload, want.Payload))
	}
}

// TestFanoutShardKilledFallsBackLocal kills one shard mid-sweep (its
// conns drop while requests are in flight, like a SIGKILL) and asserts
// the coordinator recomputes that shard's range locally — and that the
// composed payload is still byte-identical to a single-instance run.
func TestFanoutShardKilledFallsBackLocal(t *testing.T) {
	spec := experiment.SweepSpec{Topo: "grid", Sizes: []int{5, 10, 15, 20},
		Runs: 2, Seed: 42, Protocols: []string{"mtmrp", "odmrp"}}
	single := newTestService(t, Config{})
	want, err := single.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}

	shard0 := newTestService(t, Config{Shard: Shard{Index: 0, Count: 2}})
	ts0 := httptest.NewServer(shard0.Handler())
	defer ts0.Close()
	// Shard 1 is dead: every connection drops mid-request, exactly what a
	// coordinator sees after kill -9.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer dead.Close()

	owners := subOwners(t, spec, 2)
	deadOwned := 0
	for _, o := range owners {
		if o == 1 {
			deadOwned++
		}
	}
	if deadOwned == 0 {
		t.Fatalf("test spec routes nothing to the dead shard (owners %v); pick a different spec", owners)
	}

	front := newTestService(t, Config{})
	fan, err := NewFanout(front, fastFanout(t, ts0.URL, dead.URL))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fan.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, want.Payload) {
		t.Fatal("composed payload with a dead shard is not byte-identical to the single-instance run")
	}
	if got := fan.LocalFallbacks(); got != uint64(deadOwned) {
		t.Errorf("local fallbacks = %d, want %d (the dead shard's sub-sweeps)", got, deadOwned)
	}
	if c := front.StatsSnapshot().Computes; c != uint64(deadOwned) {
		t.Errorf("coordinator computed %d sweeps locally, want %d", c, deadOwned)
	}
	st := fan.StatsSnapshot()
	if !st.Peers[1].CircuitOpen && st.Peers[1].Failures == 0 {
		t.Errorf("dead peer state = %+v, want recorded failures", st.Peers[1])
	}
}

// TestFanoutRetriesFlakyPeer exercises the retry/backoff path against a
// peer that fails twice with 500 before recovering: the sub-job succeeds
// on the third attempt, with the retry budget and per-peer counters
// recording exactly two retries.
func TestFanoutRetriesFlakyPeer(t *testing.T) {
	spec := experiment.SweepSpec{Topo: "grid", Sizes: []int{5}, Runs: 2, Seed: 42,
		Protocols: []string{"mtmrp", "odmrp"}}
	peer := newTestService(t, Config{})
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusInternalServerError, errNo("injected flake"))
			return
		}
		peer.Handler().ServeHTTP(w, r)
	}))
	defer flaky.Close()

	front := newTestService(t, Config{})
	cfg := fastFanout(t, flaky.URL)
	cfg.Retries = 2
	fan, err := NewFanout(front, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fan.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := peer.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, direct.Payload) {
		t.Fatal("payload through the flaky peer diverged")
	}
	st := fan.StatsSnapshot()
	if st.Retries != 2 || st.Peers[0].Requests != 3 || st.Peers[0].Retries != 2 {
		t.Errorf("retries %d, peer requests %d, peer retries %d; want 2/3/2",
			st.Retries, st.Peers[0].Requests, st.Peers[0].Retries)
	}
	if fan.LocalFallbacks() != 0 {
		t.Errorf("local fallbacks = %d, want 0 (retry succeeded)", fan.LocalFallbacks())
	}
}

// TestFanoutRetryBudgetExhausted pins what happens when the budget runs
// dry against a peer that never recovers: the sub-sweep falls back to a
// local recompute and the sweep still succeeds, byte-identically.
func TestFanoutRetryBudgetExhausted(t *testing.T) {
	spec := experiment.SweepSpec{Topo: "grid", Sizes: []int{5}, Runs: 2, Seed: 42,
		Protocols: []string{"mtmrp", "odmrp"}}
	var calls atomic.Int64
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusInternalServerError, errNo("still broken"))
	}))
	defer broken.Close()

	front := newTestService(t, Config{})
	cfg := fastFanout(t, broken.URL)
	cfg.Retries = -1 // explicit zero budget: one attempt per sub-job
	fan, err := NewFanout(front, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fan.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := newTestService(t, Config{}).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, want.Payload) {
		t.Fatal("fallback payload diverged from a direct computation")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("peer saw %d attempts, want exactly 1 (zero retry budget)", got)
	}
	if fan.LocalFallbacks() != 1 {
		t.Errorf("local fallbacks = %d, want 1", fan.LocalFallbacks())
	}
}

// TestFanoutPermanentErrorDoesNotFallBack: a 4xx spec rejection from a
// live peer means retrying or recomputing locally cannot help — the
// coordinator must surface it as a fan-out failure, not mask it.
func TestFanoutPermanentErrorDoesNotFallBack(t *testing.T) {
	spec := experiment.SweepSpec{Topo: "grid", Sizes: []int{5}, Runs: 2, Seed: 42,
		Protocols: []string{"mtmrp", "odmrp"}}
	var calls atomic.Int64
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusBadRequest, errNo("peer built from a newer spec version"))
	}))
	defer rejecting.Close()

	front := newTestService(t, Config{})
	fan, err := NewFanout(front, fastFanout(t, rejecting.URL))
	if err != nil {
		t.Fatal(err)
	}
	_, err = fan.Sweep(spec)
	var fe *FanoutError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FanoutError", err)
	}
	if len(fe.Subs) != 1 || !strings.Contains(fe.Subs[0].Error, "newer spec version") {
		t.Fatalf("fanout error subs = %+v", fe.Subs)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("peer saw %d attempts, want 1 (permanent errors are not retried)", got)
	}
	if fan.LocalFallbacks() != 0 {
		t.Errorf("local fallbacks = %d, want 0 (permanent errors do not fall back)", fan.LocalFallbacks())
	}
}

// TestFanoutHedging delays the owner replica past the hedge threshold and
// asserts the duplicate request to the next peer wins.
func TestFanoutHedging(t *testing.T) {
	spec := experiment.SweepSpec{Topo: "grid", Sizes: []int{5}, Runs: 2, Seed: 42,
		Protocols: []string{"mtmrp", "odmrp"}}
	owner := subOwners(t, spec, 2)[0]

	var servers [2]*httptest.Server
	for i := 0; i < 2; i++ {
		peer := newTestService(t, Config{})
		slow := i == owner
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slow && r.URL.Path == "/v1/sweep" {
				// The owner replica stalls far past the hedge threshold;
				// bounded so server shutdown can always drain it.
				time.Sleep(400 * time.Millisecond)
			}
			peer.Handler().ServeHTTP(w, r)
		}))
		defer servers[i].Close()
	}

	front := newTestService(t, Config{})
	cfg := fastFanout(t, servers[0].URL, servers[1].URL)
	cfg.Hedge = 5 * time.Millisecond
	fan, err := NewFanout(front, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fan.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := newTestService(t, Config{}).Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, want.Payload) {
		t.Fatal("hedged payload diverged")
	}
	st := fan.StatsSnapshot()
	if st.Hedges != 1 || st.Peers[(owner+1)%2].Hedges != 1 {
		t.Errorf("hedges = %d (peer %d: %d), want 1 fired at the non-owner",
			st.Hedges, (owner+1)%2, st.Peers[(owner+1)%2].Hedges)
	}
}

// TestFanoutCircuitBreaker opens a dead peer's circuit at threshold 1,
// verifies requests shed to the local fallback, then revives the peer and
// checks a health probe closes the circuit again.
func TestFanoutCircuitBreaker(t *testing.T) {
	spec := experiment.SweepSpec{Topo: "grid", Sizes: []int{5}, Runs: 2, Seed: 42,
		Protocols: []string{"mtmrp", "odmrp"}}
	var up atomic.Bool
	flappy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !up.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flappy.Close()

	front := newTestService(t, Config{})
	cfg := fastFanout(t, flappy.URL)
	cfg.CircuitThreshold = 1
	cfg.CircuitCooldown = time.Hour // no half-open probe during the test
	fan, err := NewFanout(front, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fan.Sweep(spec); err != nil {
		t.Fatal(err)
	}
	st := fan.StatsSnapshot()
	if !st.Peers[0].CircuitOpen || st.Peers[0].Healthy {
		t.Fatalf("after a dead-peer sweep: peer = %+v, want open circuit", st.Peers[0])
	}
	if fan.LocalFallbacks() != 1 {
		t.Fatalf("local fallbacks = %d, want 1", fan.LocalFallbacks())
	}

	// Revive the peer; the health probe closes the circuit.
	up.Store(true)
	fan.ProbePeers()
	st = fan.StatsSnapshot()
	if st.Peers[0].CircuitOpen || !st.Peers[0].Healthy {
		t.Fatalf("after revival probe: peer = %+v, want closed circuit", st.Peers[0])
	}
}

// TestNewFanoutValidation pins the constructor's rejections.
func TestNewFanoutValidation(t *testing.T) {
	unsharded := newTestService(t, Config{})
	if _, err := NewFanout(unsharded, FanoutConfig{}); err == nil {
		t.Error("no peers accepted")
	}
	if _, err := NewFanout(unsharded, FanoutConfig{Peers: []string{"not a url"}}); err == nil {
		t.Error("bad peer URL accepted")
	}
	sharded := newTestService(t, Config{Shard: Shard{Index: 0, Count: 2}})
	if _, err := NewFanout(sharded, FanoutConfig{Peers: []string{"http://peer:1"}}); err == nil {
		t.Error("sharded local service accepted")
	}
}

// TestBackoffDelayBounded checks every jittered delay stays within
// [nominal/2, nominal] with the nominal schedule doubling up to the cap.
func TestBackoffDelayBounded(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	for attempt := 1; attempt <= 8; attempt++ {
		nominal := base << (attempt - 1)
		if nominal > max {
			nominal = max
		}
		for i := 0; i < 50; i++ {
			d := backoffDelay(base, max, attempt)
			if d < nominal/2 || d > nominal {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, nominal/2, nominal)
			}
		}
	}
}

// TestFanoutErrorEnvelope checks the partial-failure envelope: 502,
// upstream_failed, and per-sub-job detail.
func TestFanoutErrorEnvelope(t *testing.T) {
	fe := &FanoutError{Key: "fullkey", Subs: []SubError{{Key: "subkey", Error: "boom"}}}
	if errStatus(fe) != http.StatusBadGateway {
		t.Fatalf("errStatus = %d, want 502", errStatus(fe))
	}
	rec := httptest.NewRecorder()
	writeErrorKeyed(rec, errStatus(fe), "", fe)
	var env APIError
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != "upstream_failed" || env.Key != "fullkey" {
		t.Fatalf("envelope = %+v", env)
	}
	if len(env.Subs) != 1 || env.Subs[0].Key != "subkey" || env.Subs[0].Error != "boom" {
		t.Fatalf("envelope subs = %+v", env.Subs)
	}
}

// errNo is a tiny error constructor keeping handler closures readable.
func errNo(msg string) error { return errors.New(msg) }

// readBody drains and returns a response body.
func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
