package service

import (
	"sync"

	"mtmrp/internal/experiment"
	"mtmrp/internal/topology"
)

// PoolBank owns the service's long-lived SessionPools. A SessionPool is
// single-goroutine, so the bank loans pools out — one per sweep-engine
// worker for the duration of one computation — and takes them back when
// the sweep finishes. Because the pools persist across requests, the
// sessions inside them stay warm: a miss right after boot (or after a
// hundred other sweeps of the same shape) resets sessions in place instead
// of rebuilding simulator, channel and protocol state from scratch.
type PoolBank struct {
	mu      sync.Mutex
	free    []*experiment.SessionPool
	created int
}

// loan pops a free pool, building a fresh one when the bank is empty (the
// bank never blocks: worst case a burst of concurrent sweeps cold-starts
// extra pools, which return to the bank warm).
func (b *PoolBank) loan() *experiment.SessionPool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := len(b.free); n > 0 {
		p := b.free[n-1]
		b.free = b.free[:n-1]
		return p
	}
	b.created++
	return experiment.NewSessionPool()
}

// put returns a loaned pool to the bank.
func (b *PoolBank) put(p *experiment.SessionPool) {
	b.mu.Lock()
	b.free = append(b.free, p)
	b.mu.Unlock()
}

// WorkerState returns a sweep-engine WorkerState constructor that loans
// pools from the bank, plus a release to call after the sweep completes
// (sweep.Run joins its workers before returning, so every loaned pool is
// quiescent by then).
func (b *PoolBank) WorkerState() (state func() any, release func()) {
	var mu sync.Mutex
	var loaned []*experiment.SessionPool
	state = func() any {
		p := b.loan()
		mu.Lock()
		loaned = append(loaned, p)
		mu.Unlock()
		return p
	}
	release = func() {
		mu.Lock()
		ps := loaned
		loaned = nil
		mu.Unlock()
		b.mu.Lock()
		b.free = append(b.free, ps...)
		b.mu.Unlock()
	}
	return state, release
}

// Size reports free and total pool counts.
func (b *PoolBank) Size() (free, created int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.free), b.created
}

// Prewarm stocks the bank with n pools, each warmed with one tiny session
// per comparison protocol on the paper grid — exactly the session shapes a
// Figure-5 sweep reuses — so the first real miss after boot finds fully
// constructed sessions and only resets them. Purely a latency optimisation:
// results are bit-identical with a cold bank.
func (b *PoolBank) Prewarm(n int) error {
	topo := topology.PaperGrid()
	grid := experiment.LinkTableFor(topo)
	warmed := make([]*experiment.SessionPool, 0, n)
	for i := 0; i < n; i++ {
		p := experiment.NewSessionPool()
		for _, proto := range experiment.AllProtocols {
			if _, err := p.Run(experiment.Scenario{
				Topo: topo, Source: 0, Receivers: []int{1},
				Protocol: proto, Seed: 1, Links: grid,
			}); err != nil {
				return err
			}
		}
		warmed = append(warmed, p)
	}
	b.mu.Lock()
	b.free = append(b.free, warmed...)
	b.created += n
	b.mu.Unlock()
	return nil
}
