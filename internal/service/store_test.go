package service

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.store")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestStoreRoundTrip(t *testing.T) {
	s, path := tempStore(t)
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if err := s.Append("a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("b", []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a")
	if err != nil || string(got) != "payload-a" {
		t.Fatalf("Get(a) = %q, %v", got, err)
	}

	// Latest-wins on re-append: the file only grows, the index moves.
	before := s.Size()
	if err := s.Append("a", []byte("payload-a2")); err != nil {
		t.Fatal(err)
	}
	if s.Size() <= before {
		t.Error("re-append did not grow the file")
	}
	if got, _ := s.Get("a"); string(got) != "payload-a2" {
		t.Errorf("Get(a) after re-append = %q", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 distinct keys", s.Len())
	}

	// Reopen: index rebuilt from the records.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, _ := s2.Get("a"); string(got) != "payload-a2" {
		t.Errorf("reopened Get(a) = %q", got)
	}
	if got, _ := s2.Get("b"); string(got) != "payload-b" {
		t.Errorf("reopened Get(b) = %q", got)
	}
}

func TestStoreTornTailRecovery(t *testing.T) {
	s, path := tempStore(t)
	if err := s.Append("first", bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("second", bytes.Repeat([]byte("y"), 100)); err != nil {
		t.Fatal(err)
	}
	sizeAfterFirst := int64(len(storeMagic)) + 1 + recHeaderLen + 5 + 100 + 4
	s.Close()

	// Tear the tail: cut into the middle of the second record, as a crash
	// mid-append would.
	if err := os.Truncate(path, s.Size()-30); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("after torn tail Len = %d, want 1", s2.Len())
	}
	if got, err := s2.Get("first"); err != nil || len(got) != 100 {
		t.Fatalf("first record lost after tail truncation: %d bytes, %v", len(got), err)
	}
	if _, err := s2.Get("second"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn record still indexed: %v", err)
	}
	if s2.Size() != sizeAfterFirst {
		t.Errorf("recovered size = %d, want %d (torn bytes cut)", s2.Size(), sizeAfterFirst)
	}

	// The store keeps working after recovery.
	if err := s2.Append("third", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.Get("third"); string(got) != "z" {
		t.Errorf("post-recovery append lost: %q", got)
	}
}

func TestStoreCorruptionDetected(t *testing.T) {
	s, path := tempStore(t)
	if err := s.Append("k", bytes.Repeat([]byte("p"), 64)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte (well before the CRC trailer).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-20] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on bit-flipped record = %v, want ErrCorrupt", err)
	}
	if _, corrupt := s2.Stats(); corrupt != 1 {
		t.Errorf("corrupt counter = %d, want 1", corrupt)
	}

	// A fresh append supersedes the bad record.
	if err := s2.Append("k", []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if got, err := s2.Get("k"); err != nil || string(got) != "recomputed" {
		t.Fatalf("superseding append: %q, %v", got, err)
	}
}

func TestStoreRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("#!/bin/sh\necho hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Fatal("OpenStore accepted a non-store file")
	}
}
