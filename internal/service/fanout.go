package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mtmrp/internal/experiment"
)

// The fan-out coordinator: a front-end that accepts a full SweepSpec,
// splits it into per-axis-point sub-sweeps, routes each sub-job to the
// peer owning its key range, executes them concurrently with per-request
// timeouts, bounded exponential backoff with jitter, a retry budget and
// optional tail-latency hedging, then composes the cells deterministically
// and caches the composed payload under the full sweep's key — so a repeat
// submission is a plain single-instance cache hit.
//
// Failure handling is graceful by construction: when every route to a
// sub-job's owner is exhausted (dead process, open circuit, drained peer),
// the coordinator recomputes that range locally — logged and counted in
// /v1/stats — rather than failing the sweep. Determinism makes this safe:
// a sub-sweep payload is a pure function of its canonical spec, so bytes
// computed locally are identical to the bytes the dead owner would have
// served, and the composed payload stays byte-identical to a
// single-instance full run.

// FanoutError reports a fan-out whose sub-jobs could not all be completed
// (remote routes exhausted and the local fallback failed too). It carries
// per-sub detail for the HTTP error envelope.
type FanoutError struct {
	Key  string
	Subs []SubError
}

// Error implements error.
func (e *FanoutError) Error() string {
	if len(e.Subs) == 0 {
		return "fanout: sweep failed"
	}
	return fmt.Sprintf("fanout: %d sub-sweep(s) failed (first: %s)", len(e.Subs), e.Subs[0].Error)
}

// FanoutConfig parameterises a Fanout coordinator. Zero fields take the
// defaults noted on each.
type FanoutConfig struct {
	// Peers are the peer instances' base URLs, in shard order: peer i must
	// be (or proxy for) the instance serving shard i of len(Peers). The
	// coordinator routes each sub-job to Owner(subKey) and follows
	// X-Mtmrd-Owner redirects, so a misconfigured order still converges —
	// it just pays one redirect.
	Peers []string
	// Timeout bounds each HTTP attempt (default 10 min: a full-size
	// sub-sweep is minutes of compute; the retry loop, not the transport,
	// is the liveness mechanism).
	Timeout time.Duration
	// Retries is the per-sub-job retry budget after the first attempt
	// (default 2). Retryable failures are network errors, 5xx and 503
	// draining; 4xx spec rejections are permanent.
	Retries int
	// BackoffBase and BackoffMax bound the exponential backoff between
	// retries (defaults 100 ms and 5 s); each delay is jittered to half
	// its nominal value plus a uniform draw of the other half.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Hedge, when positive, fires a duplicate request to the next peer in
	// ring order if the owner has not answered after this long, taking
	// whichever response lands first. Meant for replicated (unsharded)
	// peer sets; against sharded peers the hedge follows the 421 redirect
	// back, degenerating to an early retry.
	Hedge time.Duration
	// FailureThreshold consecutive transport failures open a peer's
	// circuit (default 3); while open, requests fail fast to the local
	// fallback instead of queueing on a dead host.
	CircuitThreshold int
	// CircuitCooldown is how long an open circuit sheds load before
	// admitting a half-open probe attempt (default 10 s).
	CircuitCooldown time.Duration
	// Client overrides the HTTP client (tests; default http.DefaultClient
	// semantics with no client-level timeout — per-attempt contexts bound
	// each request).
	Client *http.Client
	// Logf sinks operational log lines (default log.Printf).
	Logf func(format string, v ...any)
}

// peerState is one peer's routing state: health, circuit breaker and
// counters. All fields are guarded by mu.
type peerState struct {
	url string

	mu          sync.Mutex
	healthy     bool
	consecFails int
	openUntil   time.Time
	requests    uint64
	failures    uint64
	retries     uint64
	hedges      uint64
}

// admit reports whether a request may be sent: true while the circuit is
// closed, false while it is open and cooling down. The first caller after
// the cooldown is admitted as the half-open probe; the window is pushed
// forward so concurrent requests stay shed until the probe reports back.
func (p *peerState) admit(threshold int, cooldown time.Duration) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.consecFails < threshold {
		return true
	}
	now := time.Now()
	if now.Before(p.openUntil) {
		return false
	}
	p.openUntil = now.Add(cooldown)
	return true
}

// open reports whether the circuit is currently open.
func (p *peerState) open(threshold int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consecFails >= threshold
}

// ok records a successful contact: circuit closed, peer healthy.
func (p *peerState) ok() {
	p.mu.Lock()
	p.healthy = true
	p.consecFails = 0
	p.openUntil = time.Time{}
	p.mu.Unlock()
}

// fail records a transport failure, opening the circuit at the threshold.
func (p *peerState) fail(threshold int, cooldown time.Duration) {
	p.mu.Lock()
	p.healthy = false
	p.failures++
	p.consecFails++
	if p.consecFails >= threshold {
		p.openUntil = time.Now().Add(cooldown)
	}
	p.mu.Unlock()
}

func (p *peerState) addRequest() { p.mu.Lock(); p.requests++; p.mu.Unlock() }
func (p *peerState) addRetry()   { p.mu.Lock(); p.retries++; p.mu.Unlock() }
func (p *peerState) addHedge()   { p.mu.Lock(); p.hedges++; p.mu.Unlock() }

// Fanout is the coordinator. It wraps an unsharded local Service that
// provides the composed-result cache/store and the local-recompute
// fallback, and fans sub-jobs out to the configured peers.
type Fanout struct {
	cfg     FanoutConfig
	svc     *Service
	client  *http.Client
	peers   []*peerState
	flights flightGroup

	sweeps         atomic.Uint64 // full sweeps fanned out
	composed       atomic.Uint64 // composed payloads cached
	subJobs        atomic.Uint64 // sub-jobs dispatched
	retries        atomic.Uint64 // retry attempts across all sub-jobs
	hedges         atomic.Uint64 // hedged duplicate requests fired
	localFallbacks atomic.Uint64 // sub-ranges recomputed locally
}

// NewFanout builds a coordinator over svc. svc must own the whole key
// space (the coordinator caches composed full-sweep payloads and
// recomputes arbitrary sub-ranges locally, neither of which tolerates a
// shard filter).
func NewFanout(svc *Service, cfg FanoutConfig) (*Fanout, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("fanout: at least one peer required")
	}
	if sh := svc.cfg.Shard.normalized(); sh.Count != 1 {
		return nil, fmt.Errorf("fanout: local service must be unsharded (got shard %d/%d)", sh.Index, sh.Count)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Minute
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.CircuitThreshold <= 0 {
		cfg.CircuitThreshold = 3
	}
	if cfg.CircuitCooldown <= 0 {
		cfg.CircuitCooldown = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	f := &Fanout{cfg: cfg, svc: svc, client: cfg.Client}
	if f.client == nil {
		f.client = &http.Client{}
	}
	for _, raw := range cfg.Peers {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fanout: bad peer URL %q", raw)
		}
		f.peers = append(f.peers, &peerState{url: strings.TrimRight(raw, "/"), healthy: true})
	}
	return f, nil
}

// Sweep serves a full sweep spec: composed-cache lookup, then fan-out.
// Concurrent submissions of the same key coalesce on the coordinator's
// own singleflight group, exactly like the single-instance serve path.
func (f *Fanout) Sweep(spec experiment.SweepSpec) (Result, error) {
	key, err := spec.Key()
	if err != nil {
		return Result{}, err
	}
	if res, err := f.svc.Lookup(key); err == nil {
		return res, nil
	}
	if f.svc.Draining() {
		return Result{Key: key}, ErrDraining
	}
	canon, err := spec.Canonical()
	if err != nil {
		return Result{Key: key}, err
	}
	payload, shared, err := f.flights.Do(key, func() ([]byte, error) {
		// A waiter queued behind an identical earlier flight may land here
		// after that flight cached its composition; re-check first.
		if res, err := f.svc.Lookup(key); err == nil {
			return res.Payload, nil
		}
		return f.compose(key, canon)
	})
	if err != nil {
		return Result{Key: key}, err
	}
	return Result{Key: key, Source: "composed", Shared: shared, Payload: payload}, nil
}

// compose fans the sub-sweeps out, waits for all of them, and assembles
// and caches the full payload.
func (f *Fanout) compose(key string, canon experiment.SweepSpec) ([]byte, error) {
	f.sweeps.Add(1)
	subs, err := canon.Split()
	if err != nil {
		return nil, err
	}
	outs := make([]subResult, len(subs))
	var wg sync.WaitGroup
	for i := range subs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = f.runSub(subs[i])
		}(i)
	}
	wg.Wait()

	var fails []SubError
	payloads := make([][]byte, len(outs))
	for i, o := range outs {
		if o.err != nil {
			fails = append(fails, SubError{Key: o.key, Error: o.err.Error()})
			continue
		}
		payloads[i] = o.payload
	}
	if len(fails) > 0 {
		return nil, &FanoutError{Key: key, Subs: fails}
	}
	composed, err := ComposeSweep(key, canon, payloads)
	if err != nil {
		return nil, err
	}
	if err := f.svc.PutComposed(key, composed); err != nil {
		return nil, err
	}
	f.composed.Add(1)
	return composed, nil
}

// subResult is one sub-job's outcome.
type subResult struct {
	key     string
	payload []byte
	err     error
}

// runSub executes one sub-sweep: route to its owner (with retries,
// redirects and optional hedging), and fall back to a local recompute when
// every remote route is exhausted. Determinism makes the fallback exact —
// the local bytes are the bytes the owner would have served.
func (f *Fanout) runSub(sub experiment.SweepSpec) subResult {
	f.subJobs.Add(1)
	subKey, err := sub.Key()
	if err != nil {
		return subResult{err: err}
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return subResult{key: subKey, err: err}
	}
	owner := Shard{Count: len(f.peers)}.Owner(subKey)
	payload, rerr := f.fetchHedged(owner, subKey, body)
	if rerr == nil {
		return subResult{key: subKey, payload: payload}
	}
	if isPermanent(rerr) {
		return subResult{key: subKey, err: rerr}
	}
	f.localFallbacks.Add(1)
	f.cfg.Logf("mtmrd fanout: sub-sweep %s: peers unavailable (%v); recomputing locally", subKey[:16], rerr)
	res, lerr := f.svc.Sweep(sub)
	if lerr != nil {
		return subResult{key: subKey, err: errors.Join(rerr, lerr)}
	}
	return subResult{key: subKey, payload: res.Payload}
}

// fetchHedged runs the owner fetch, firing a duplicate to the next peer in
// ring order if the owner has not answered within the hedge delay. The
// first successful response wins; with no success, the last error is
// returned once every launched request has finished.
func (f *Fanout) fetchHedged(owner int, subKey string, body []byte) ([]byte, error) {
	if f.cfg.Hedge <= 0 || len(f.peers) < 2 {
		return f.fetchFrom(owner, subKey, body)
	}
	type out struct {
		payload []byte
		err     error
	}
	ch := make(chan out, 2)
	go func() {
		p, err := f.fetchFrom(owner, subKey, body)
		ch <- out{p, err}
	}()
	timer := time.NewTimer(f.cfg.Hedge)
	defer timer.Stop()
	pending := 1
	hedged := false
	var lastErr error
	for {
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				return o.payload, nil
			}
			lastErr = o.err
			if pending == 0 {
				return nil, lastErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			hedge := (owner + 1) % len(f.peers)
			f.hedges.Add(1)
			f.peers[hedge].addHedge()
			pending++
			go func() {
				p, err := f.fetchFrom(hedge, subKey, body)
				ch <- out{p, err}
			}()
		}
	}
}

// fetchFrom posts the sub-spec to a peer, following 421 ownership
// redirects, retrying transport failures under the backoff schedule, and
// failing fast on open circuits and permanent (spec-level) rejections.
func (f *Fanout) fetchFrom(start int, subKey string, body []byte) ([]byte, error) {
	peer := start
	redirects := 0
	var lastErr error
	for attempt := 0; attempt <= f.cfg.Retries; attempt++ {
		if attempt > 0 {
			f.retries.Add(1)
			f.peers[peer].addRetry()
			time.Sleep(backoffDelay(f.cfg.BackoffBase, f.cfg.BackoffMax, attempt))
		}
		for {
			p := f.peers[peer]
			if !p.admit(f.cfg.CircuitThreshold, f.cfg.CircuitCooldown) {
				return nil, fmt.Errorf("fanout: peer %s: circuit open", p.url)
			}
			payload, next, err := f.post(p, subKey, body)
			if err == nil && next < 0 {
				return payload, nil
			}
			if next >= 0 {
				// Ownership redirect: routing information, not a failure.
				if redirects++; redirects > len(f.peers) {
					return nil, fmt.Errorf("fanout: redirect loop routing sub-sweep %s", subKey[:16])
				}
				peer = next
				continue
			}
			lastErr = err
			if isPermanent(err) {
				return nil, err
			}
			break
		}
	}
	return nil, lastErr
}

// permanentError marks a peer response that retrying cannot fix (the peer
// understood the request and rejected it).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

func isPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// backoffDelay is the jittered exponential backoff before retry attempt
// (attempt >= 1): nominal base<<(attempt-1) capped at max, jittered
// uniformly within [nominal/2, nominal].
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	nominal := base
	for i := 1; i < attempt && nominal < max; i++ {
		nominal *= 2
	}
	if nominal > max {
		nominal = max
	}
	half := nominal / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// post sends one sub-sweep request. Returns the payload on 200, the
// redirect target on 421, a permanent error on other 4xx (the peer is
// alive and rejected the spec) and a retryable error on transport
// failures and 5xx.
func (f *Fanout) post(p *peerState, subKey string, body []byte) (payload []byte, redirect int, err error) {
	p.addRequest()
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return nil, -1, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		p.fail(f.cfg.CircuitThreshold, f.cfg.CircuitCooldown)
		return nil, -1, fmt.Errorf("fanout: peer %s: %w", p.url, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			p.fail(f.cfg.CircuitThreshold, f.cfg.CircuitCooldown)
			return nil, -1, fmt.Errorf("fanout: peer %s: reading payload: %w", p.url, err)
		}
		if got := resp.Header.Get("X-Mtmrd-Key"); got != subKey {
			// A key mismatch means the peer computed a different canonical
			// form — a version skew, not a transient fault.
			return nil, -1, &permanentError{fmt.Errorf("fanout: peer %s returned key %.16q…, want %.16q…", p.url, got, subKey)}
		}
		p.ok()
		return b, -1, nil
	case resp.StatusCode == http.StatusMisdirectedRequest:
		p.ok() // the peer answered; this is routing info
		idx, aerr := strconv.Atoi(resp.Header.Get("X-Mtmrd-Owner"))
		if aerr != nil || idx < 0 || idx >= len(f.peers) {
			return nil, -1, &permanentError{fmt.Errorf("fanout: peer %s: unusable owner redirect %q", p.url, resp.Header.Get("X-Mtmrd-Owner"))}
		}
		return nil, idx, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests:
		p.ok() // alive; the request itself was rejected
		return nil, -1, &permanentError{respError(p, resp)}
	default:
		// 5xx (including 503 draining) and 429: retryable.
		p.fail(f.cfg.CircuitThreshold, f.cfg.CircuitCooldown)
		return nil, -1, respError(p, resp)
	}
}

// respError surfaces the peer's error envelope when one is readable.
func respError(p *peerState, resp *http.Response) error {
	var env APIError
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 8192))
	if json.Unmarshal(b, &env) == nil && env.Error != "" {
		return fmt.Errorf("fanout: peer %s: status %d: %s", p.url, resp.StatusCode, env.Error)
	}
	return fmt.Errorf("fanout: peer %s: status %d", p.url, resp.StatusCode)
}

// ComposeSweep assembles the full sweep payload from its sub-sweep
// payloads, in Split() order. Every sub-payload's cell matrix is
// axis-major, so composition is row concatenation per protocol; the
// composed struct is then marshalled once through the same encoder as a
// local computation. Go's JSON float encoding round-trips float64 exactly
// (shortest-representation), so unmarshalling sub-payload cells and
// re-marshalling them reproduces the single-instance bytes bit for bit —
// the property the bit-identity tests and the CI cmp pin.
func ComposeSweep(key string, canon experiment.SweepSpec, subs [][]byte) ([]byte, error) {
	metricNames, err := canon.Metrics()
	if err != nil {
		return nil, err
	}
	parsed := make([]SweepPayload, len(subs))
	for i, raw := range subs {
		if err := json.Unmarshal(raw, &parsed[i]); err != nil {
			return nil, fmt.Errorf("fanout: decoding sub-payload %d: %w", i, err)
		}
		if len(parsed[i].Curves) != len(canon.Protocols) {
			return nil, fmt.Errorf("fanout: sub-payload %d has %d curves, want %d", i, len(parsed[i].Curves), len(canon.Protocols))
		}
	}
	out := SweepPayload{Key: key, Kind: "sweep", Spec: canon, Metrics: metricNames}
	for pi, name := range canon.Protocols {
		curve := SweepCurve{Protocol: name}
		for i := range parsed {
			if parsed[i].Curves[pi].Protocol != name {
				return nil, fmt.Errorf("fanout: sub-payload %d curve %d is %q, want %q", i, pi, parsed[i].Curves[pi].Protocol, name)
			}
			curve.Cells = append(curve.Cells, parsed[i].Curves[pi].Cells...)
		}
		out.Curves = append(out.Curves, curve)
	}
	return json.Marshal(out)
}

// ProbePeers checks every peer's /healthz once, in parallel, updating
// health and circuit state: a live peer closes its circuit (the recovery
// path after a restart), a dead one accumulates failures toward opening
// it before any sweep traffic has to find out.
func (f *Fanout) ProbePeers() {
	timeout := 5 * time.Second
	if f.cfg.Timeout < timeout {
		timeout = f.cfg.Timeout
	}
	var wg sync.WaitGroup
	for _, p := range f.peers {
		wg.Add(1)
		go func(p *peerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
			if err != nil {
				p.fail(f.cfg.CircuitThreshold, f.cfg.CircuitCooldown)
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				p.fail(f.cfg.CircuitThreshold, f.cfg.CircuitCooldown)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				p.ok()
			} else {
				p.fail(f.cfg.CircuitThreshold, f.cfg.CircuitCooldown)
			}
		}(p)
	}
	wg.Wait()
}

// StartProbing probes all peers now and then every interval until the
// returned stop function is called.
func (f *Fanout) StartProbing(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			f.ProbePeers()
			select {
			case <-done:
				return
			case <-ticker.C:
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// FanoutStats is the coordinator section of /v1/stats.
type FanoutStats struct {
	Peers          []PeerStats `json:"peers"`
	Sweeps         uint64      `json:"sweeps"`
	Composed       uint64      `json:"composed"`
	SubJobs        uint64      `json:"sub_jobs"`
	Retries        uint64      `json:"retries"`
	Hedges         uint64      `json:"hedges"`
	LocalFallbacks uint64      `json:"local_fallbacks"`
}

// PeerStats is one peer's routing state snapshot.
type PeerStats struct {
	URL                 string `json:"url"`
	Healthy             bool   `json:"healthy"`
	CircuitOpen         bool   `json:"circuit_open"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Requests            uint64 `json:"requests"`
	Failures            uint64 `json:"failures"`
	Retries             uint64 `json:"retries"`
	Hedges              uint64 `json:"hedges"`
}

// StatsSnapshot collects the coordinator counters and per-peer state.
func (f *Fanout) StatsSnapshot() FanoutStats {
	st := FanoutStats{
		Sweeps:         f.sweeps.Load(),
		Composed:       f.composed.Load(),
		SubJobs:        f.subJobs.Load(),
		Retries:        f.retries.Load(),
		Hedges:         f.hedges.Load(),
		LocalFallbacks: f.localFallbacks.Load(),
	}
	for _, p := range f.peers {
		p.mu.Lock()
		st.Peers = append(st.Peers, PeerStats{
			URL:                 p.url,
			Healthy:             p.healthy,
			CircuitOpen:         p.consecFails >= f.cfg.CircuitThreshold,
			ConsecutiveFailures: p.consecFails,
			Requests:            p.requests,
			Failures:            p.failures,
			Retries:             p.retries,
			Hedges:              p.hedges,
		})
		p.mu.Unlock()
	}
	return st
}

// LocalFallbacks reports how many sub-ranges were recomputed locally.
func (f *Fanout) LocalFallbacks() uint64 { return f.localFallbacks.Load() }

// Handler returns the coordinator's HTTP API: POST /v1/sweep fans out and
// composes (streaming is not supported through the coordinator — the
// composed response is written whole), GET /v1/stats adds the fanout
// section, and every other endpoint — /v1/run, /v1/sweep/split,
// /v1/result/{key}, /healthz — is the local service's.
func (f *Fanout) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", f.svc.Handler())
	mux.HandleFunc("POST /v1/sweep", f.handleSweep)
	mux.HandleFunc("GET /v1/stats", f.handleStats)
	return mux
}

func (f *Fanout) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec experiment.SweepSpec
	if err := decodeSpec(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := f.Sweep(spec)
	if err != nil && isSpecErr(err) {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	f.svc.writeResult(w, res, err)
}

func (f *Fanout) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := f.svc.StatsSnapshot()
	fs := f.StatsSnapshot()
	st.Fanout = &fs
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
