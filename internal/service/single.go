package service

import "sync"

// flightGroup is a singleflight: concurrent callers asking for the same
// key share one execution of the compute function, so N identical
// submissions racing a cold cache cost exactly one sweep. Hand-rolled (no
// external deps): a leader per key runs fn; late arrivals count themselves
// as waiters and block on the call's done channel.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	payload []byte
	err     error
	waiters int
}

// Do executes fn for key, collapsing concurrent duplicates onto the first
// caller's execution. shared reports whether this caller attached to an
// execution someone else started (the coalescing the service counts).
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (payload []byte, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.payload, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.payload, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.payload, false, c.err
}

// FlightGroup exposes the singleflight group to cmd/benchreport, which
// freezes its contention latency in the release report.
type FlightGroup = flightGroup

// Waiters reports how many callers are currently blocked on key's
// in-flight execution (0 when none is in flight). Test instrumentation:
// the collapse tests use it to release a gated compute only after every
// concurrent submission has attached.
func (g *flightGroup) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
