// Package service is the repository's serving layer: a long-running sweep
// service (cmd/mtmrd) that canonicalizes and hashes incoming Scenario/sweep
// specs (internal/experiment's spec layer), serves repeats from an
// in-memory LRU backed by an append-only on-disk result store, and
// schedules misses on a worker pool of pre-warmed session pools with
// singleflight deduplication, streaming progress and graceful drain.
// Determinism makes every result infinitely cacheable: a key certifies the
// bytes, so a hit is a map lookup where a miss is a Monte-Carlo sweep.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Store errors.
var (
	// ErrNotFound reports a key with no stored result.
	ErrNotFound = errors.New("service: result not in store")
	// ErrCorrupt reports a stored record whose checksum no longer matches
	// its bytes. The service treats it as a miss and recomputes; the fresh
	// append supersedes the bad record.
	ErrCorrupt = errors.New("service: stored result corrupt")
)

// storeMagic opens every store file; storeVersion versions the record
// layout.
const (
	storeMagic   = "MTMRDST"
	storeVersion = byte(1)
)

// recHeaderLen is the fixed per-record prefix: key length and payload
// length, little-endian u32 each. The trailer is a u32 CRC32 (IEEE) over
// key+payload.
const recHeaderLen = 8

// maxRecordLen bounds a single record (key + payload) so a corrupt length
// field cannot make Open attempt a multi-GB read.
const maxRecordLen = 1 << 30

// storeRec locates the latest record for a key.
type storeRec struct {
	off  int64 // file offset of the record header
	klen uint32
	plen uint32
}

// Store is the append-only on-disk result store: one file of
// length-prefixed, checksummed (key, payload) records. Appends only ever
// grow the file; a rewritten key simply appends a newer record and the
// index points at the latest. On open, a truncated tail (a crash mid-
// append) is detected and cut; per-record checksums are verified on read,
// so silent bit rot surfaces as ErrCorrupt instead of a wrong result.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[string]storeRec
	size  int64

	appends uint64
	corrupt uint64
}

// OpenStore opens (or creates) the store at path and rebuilds the key
// index by scanning the records. A malformed tail — truncated record,
// impossible length — is truncated away so the store reopens cleanly after
// a crash; everything before it is preserved.
func OpenStore(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, index: make(map[string]storeRec)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load scans the file, rebuilding the index and truncating a bad tail.
func (s *Store) load() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	header := []byte(storeMagic + string(storeVersion))
	if info.Size() == 0 {
		if _, err := s.f.Write(header); err != nil {
			return err
		}
		s.size = int64(len(header))
		return nil
	}
	got := make([]byte, len(header))
	if _, err := io.ReadFull(s.f, got); err != nil || string(got) != string(header) {
		return fmt.Errorf("service: %s is not a result store (bad header)", s.path)
	}
	off := int64(len(header))
	var hdr [recHeaderLen]byte
	for {
		if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
			// Clean EOF ends the scan; a partial header is a torn append.
			break
		}
		klen := binary.LittleEndian.Uint32(hdr[0:4])
		plen := binary.LittleEndian.Uint32(hdr[4:8])
		if klen == 0 || int64(klen)+int64(plen) > maxRecordLen {
			break // impossible lengths: treat as torn tail
		}
		total := int64(klen) + int64(plen) + 4
		if off+recHeaderLen+total > info.Size() {
			break // record extends past EOF: torn tail
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(s.f, key); err != nil {
			break
		}
		// Skip payload + CRC; Get validates the checksum lazily so opening
		// a large store stays O(records), not O(bytes hashed).
		if _, err := s.f.Seek(int64(plen)+4, io.SeekCurrent); err != nil {
			return err
		}
		s.index[string(key)] = storeRec{off: off, klen: klen, plen: plen}
		off += recHeaderLen + total
	}
	if off != info.Size() {
		if err := s.f.Truncate(off); err != nil {
			return err
		}
	}
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	s.size = off
	return nil
}

// Get returns the latest stored payload for key. ErrNotFound when absent;
// ErrCorrupt when the record's checksum fails (the caller recomputes and
// re-appends, superseding the bad record).
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	buf := make([]byte, int64(rec.klen)+int64(rec.plen)+4)
	if _, err := s.f.ReadAt(buf, rec.off+recHeaderLen); err != nil {
		return nil, err
	}
	body := buf[:rec.klen+rec.plen]
	want := binary.LittleEndian.Uint32(buf[len(body):])
	if crc32.ChecksumIEEE(body) != want || string(body[:rec.klen]) != key {
		s.corrupt++
		return nil, ErrCorrupt
	}
	return body[rec.klen:], nil
}

// Append stores a payload for key. The record is written with a single
// Write call after the in-memory assembly, so a crash can only tear the
// tail record — which load cuts on the next open.
func (s *Store) Append(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := make([]byte, recHeaderLen+len(key)+len(payload)+4)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	copy(rec[recHeaderLen:], key)
	copy(rec[recHeaderLen+len(key):], payload)
	crc := crc32.ChecksumIEEE(rec[recHeaderLen : recHeaderLen+len(key)+len(payload)])
	binary.LittleEndian.PutUint32(rec[len(rec)-4:], crc)
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return err
	}
	s.index[key] = storeRec{off: s.size, klen: uint32(len(key)), plen: uint32(len(payload))}
	s.size += int64(len(rec))
	s.appends++
	return nil
}

// Len returns the number of distinct keys stored.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Size returns the store file's byte size.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Stats returns the append and corrupt-read counters.
func (s *Store) Stats() (appends, corrupt uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appends, s.corrupt
}

// Close syncs and closes the store file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
