package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"

	"mtmrp/internal/experiment"
	"mtmrp/internal/metrics"
)

// Serving errors.
var (
	// ErrDraining reports a compute refused because the service is
	// shutting down (cached results are still served during drain).
	ErrDraining = errors.New("service: draining, not accepting new computations")
	// ErrNotOwned reports a key outside this instance's shard; the
	// response names the owning shard so the caller can re-route.
	ErrNotOwned = errors.New("service: key owned by another shard")
	// ErrBadKey reports a malformed result key: keys are the lowercase hex
	// of a SHA-256, nothing else reaches the store lookup.
	ErrBadKey = errors.New("service: malformed key (want 64 lowercase hex digits)")
)

// ValidKey reports whether key is a well-formed content address. Keys the
// service mints are always the 64-digit lowercase hex of a SHA-256; the
// HTTP layer rejects anything else before the store lookup, so a typo'd
// key reads as 400 bad_key, not as 404 "not computed yet".
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Config parameterises a Service. The zero value is a single-shard,
// memory-only service with small defaults.
type Config struct {
	// StorePath is the append-only result store file ("" = memory-only:
	// results live only in the LRU).
	StorePath string
	// CacheEntries caps the in-memory LRU (default 256 entries).
	CacheEntries int
	// MaxJobs bounds concurrently executing computations; further misses
	// queue on the semaphore (default 2 — sweeps are internally parallel,
	// so a few concurrent sweeps already saturate the machine).
	MaxJobs int
	// SweepWorkers is the sweep engine's worker count per computation
	// (default GOMAXPROCS). Results are bit-identical for any value.
	SweepWorkers int
	// WarmPools pre-builds that many session pools at startup, each warmed
	// with the Figure-5 session shapes (default 0: pools are built warm on
	// first use instead).
	WarmPools int
	// Shard is this instance's key-range ownership (zero = own all keys).
	Shard Shard
	// Hooks expose internal serving events to tests.
	Hooks Hooks
}

// Hooks are test seams; all fields are optional.
type Hooks struct {
	// ComputeStarted fires on the singleflight leader after it holds a
	// job slot, before the computation runs. The collapse tests park the
	// leader here until every duplicate submission has attached.
	ComputeStarted func(key string)
}

// Service is the content-addressed sweep service behind cmd/mtmrd: specs
// in, canonical keys out, results from cache, store, or a deduplicated
// computation on pre-warmed session pools — in that order.
type Service struct {
	cfg     Config
	store   *Store // nil when memory-only
	cache   *lruCache
	flights flightGroup
	jobs    jobTable
	bank    PoolBank
	sem     chan struct{}

	draining  atomic.Bool
	computes  atomic.Uint64 // computations actually executed
	coalesced atomic.Uint64 // submissions that shared another's execution
}

// New builds a Service: opens (and recovers) the store, sizes the LRU and
// the job semaphore, and pre-warms the pool bank.
func New(cfg Config) (*Service, error) {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2
	}
	if cfg.SweepWorkers <= 0 {
		cfg.SweepWorkers = runtime.GOMAXPROCS(0)
	}
	s := &Service{
		cfg:   cfg,
		cache: newLRU(cfg.CacheEntries),
		sem:   make(chan struct{}, cfg.MaxJobs),
	}
	if cfg.StorePath != "" {
		st, err := OpenStore(cfg.StorePath)
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	if cfg.WarmPools > 0 {
		if err := s.bank.Prewarm(cfg.WarmPools); err != nil {
			s.closeStore()
			return nil, err
		}
	}
	return s, nil
}

// Result is one served response: the payload bytes plus where they came
// from. Source is "cache", "store" or "computed"; Hit reports whether the
// request was served without computing; Shared reports a submission that
// coalesced onto another caller's in-flight computation.
type Result struct {
	Key     string
	Source  string
	Hit     bool
	Shared  bool
	Payload []byte
}

// Sweep serves a group-size sweep spec.
func (s *Service) Sweep(spec experiment.SweepSpec) (Result, error) {
	key, err := spec.Key()
	if err != nil {
		return Result{}, err
	}
	return s.serve(key, func() ([]byte, error) { return s.computeSweep(key, spec) })
}

// Run serves a single-session run spec.
func (s *Service) Run(spec experiment.RunSpec) (Result, error) {
	key, err := spec.Key()
	if err != nil {
		return Result{}, err
	}
	return s.serve(key, func() ([]byte, error) { return s.computeRun(key, spec) })
}

// Lookup serves key from cache or store only — never computes. Returns
// ErrNotFound when absent (a corrupt store record also reads as absent:
// the payload is gone either way until someone resubmits the spec).
func (s *Service) Lookup(key string) (Result, error) {
	if p, ok := s.cache.Get(key); ok {
		return Result{Key: key, Source: "cache", Hit: true, Payload: p}, nil
	}
	if s.store != nil {
		p, err := s.store.Get(key)
		if err == nil {
			s.cache.Add(key, p)
			return Result{Key: key, Source: "store", Hit: true, Payload: p}, nil
		}
	}
	return Result{Key: key}, ErrNotFound
}

// serve is the cache → store → singleflight-compute path every request
// takes. compute must return the deterministic payload for key.
func (s *Service) serve(key string, compute func() ([]byte, error)) (Result, error) {
	if !s.cfg.Shard.Owns(key) {
		return Result{Key: key}, ErrNotOwned
	}
	if res, err := s.Lookup(key); err == nil {
		return res, nil
	}
	if s.draining.Load() {
		return Result{Key: key}, ErrDraining
	}
	payload, shared, err := s.flights.Do(key, func() ([]byte, error) {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		if h := s.cfg.Hooks.ComputeStarted; h != nil {
			h(key)
		}
		// A waiter queued behind an identical earlier flight may land here
		// after that flight stored its result; re-check before computing.
		if p, ok := s.cache.Get(key); ok {
			return p, nil
		}
		s.computes.Add(1)
		p, err := compute()
		if err != nil {
			return nil, err
		}
		if s.store != nil {
			if err := s.store.Append(key, p); err != nil {
				return nil, fmt.Errorf("service: storing result: %w", err)
			}
		}
		s.cache.Add(key, p)
		return p, nil
	})
	if err != nil {
		return Result{Key: key}, err
	}
	if shared {
		s.coalesced.Add(1)
	}
	return Result{Key: key, Source: "computed", Shared: shared, Payload: payload}, nil
}

// SweepPayload is the stored/served result of a sweep spec (any kind). It
// carries only deterministic data — canonical spec, the kind's metric
// names and per-cell summaries, no wall-clock engine stats — so
// recomputation is byte-identical and a cached payload can be compared bit
// for bit against a fresh run.
type SweepPayload struct {
	Key     string               `json:"key"`
	Kind    string               `json:"kind"`
	Spec    experiment.SweepSpec `json:"spec"`
	Metrics []string             `json:"metrics"`
	Curves  []SweepCurve         `json:"curves"`
}

// SweepCurve is one protocol's summaries, Cells[axisIdx][metric] — the
// sweep-kind registry's shared cell layout, axis-major so the fan-out
// composer concatenates sub-sweep rows along the outer dimension.
type SweepCurve = experiment.SweepCells

// RunPayload is the stored/served result of a run spec.
type RunPayload struct {
	Key        string             `json:"key"`
	Kind       string             `json:"kind"`
	Spec       experiment.RunSpec `json:"spec"`
	Result     metrics.Result     `json:"result"`
	Robustness metrics.Robustness `json:"robustness"`
}

// computeSweep executes the sweep on bank-loaned worker pools through its
// kind's run hook, publishing progress to key's streaming subscribers, and
// marshals the payload once.
func (s *Service) computeSweep(key string, spec experiment.SweepSpec) ([]byte, error) {
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	metricNames, err := canon.Metrics()
	if err != nil {
		return nil, err
	}
	state, release := s.bank.WorkerState()
	defer release()
	curves, err := experiment.RunSweepFromSpec(canon, experiment.EngineOptions{
		Workers:     s.cfg.SweepWorkers,
		Progress:    s.jobs.progressFunc(key),
		WorkerState: state,
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(SweepPayload{
		Key: key, Kind: "sweep", Spec: canon, Metrics: metricNames, Curves: curves,
	})
}

// computeRun executes the session on a bank-loaned pool and marshals the
// payload once.
func (s *Service) computeRun(key string, spec experiment.RunSpec) ([]byte, error) {
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	pool := s.bank.loan()
	out, err := experiment.RunFromSpec(canon, pool)
	s.bank.put(pool)
	if err != nil {
		return nil, err
	}
	return json.Marshal(RunPayload{
		Key: key, Kind: "run", Spec: canon,
		Result: out.Result, Robustness: out.Robustness,
	})
}

// PutComposed stores an externally composed payload under key, exactly as
// if this instance had computed it: appended to the store (when one is
// open) and cached. The fan-out coordinator calls it with the composed
// full-sweep payload so a repeat submission of the full spec is a plain
// single-instance cache hit.
func (s *Service) PutComposed(key string, payload []byte) error {
	if s.store != nil {
		if err := s.store.Append(key, payload); err != nil {
			return fmt.Errorf("service: storing composed result: %w", err)
		}
	}
	s.cache.Add(key, payload)
	return nil
}

// Drain stops accepting new computations; cache and store hits (and
// already-running computations) still complete. Idempotent.
func (s *Service) Drain() { s.draining.Store(true) }

// Draining reports drain state.
func (s *Service) Draining() bool { return s.draining.Load() }

// Close releases the store. Call after the HTTP server has shut down.
func (s *Service) Close() error { return s.closeStore() }

func (s *Service) closeStore() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// Stats is the /v1/stats snapshot.
type Stats struct {
	Draining  bool   `json:"draining"`
	Computes  uint64 `json:"computes"`
	Coalesced uint64 `json:"coalesced"`

	CacheEntries   int    `json:"cache_entries"`
	CacheBytes     int64  `json:"cache_bytes"`
	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`

	StoreKeys    int    `json:"store_keys"`
	StoreBytes   int64  `json:"store_bytes"`
	StoreAppends uint64 `json:"store_appends"`
	StoreCorrupt uint64 `json:"store_corrupt"`

	PoolsFree    int `json:"pools_free"`
	PoolsCreated int `json:"pools_created"`

	ShardIndex int `json:"shard_index"`
	ShardCount int `json:"shard_count"`

	// Fanout carries the coordinator's per-peer circuit state and fan-out
	// counters; nil (omitted) on plain instances.
	Fanout *FanoutStats `json:"fanout,omitempty"`
}

// StatsSnapshot collects the current counters.
func (s *Service) StatsSnapshot() Stats {
	st := Stats{
		Draining:  s.draining.Load(),
		Computes:  s.computes.Load(),
		Coalesced: s.coalesced.Load(),
	}
	st.CacheEntries, st.CacheBytes, st.CacheHits, st.CacheMisses, st.CacheEvictions = s.cache.Stats()
	if s.store != nil {
		st.StoreKeys = s.store.Len()
		st.StoreBytes = s.store.Size()
		st.StoreAppends, st.StoreCorrupt = s.store.Stats()
	}
	st.PoolsFree, st.PoolsCreated = s.bank.Size()
	sh := s.cfg.Shard.normalized()
	st.ShardIndex, st.ShardCount = sh.Index, sh.Count
	return st
}

// --- HTTP layer ---

// Handler returns the service's HTTP API:
//
//	POST /v1/sweep        submit a SweepSpec (?stream=1 for NDJSON progress)
//	POST /v1/run          submit a RunSpec
//	POST /v1/sweep/split  partition a SweepSpec into shardable sub-jobs
//	GET  /v1/result/{key} fetch a result by key (never computes)
//	GET  /v1/stats        serving counters
//	GET  /healthz         200 serving / 503 draining
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("POST /v1/sweep/split", s.handleSplit)
	mux.HandleFunc("GET /v1/result/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// decodeSpec strictly decodes a JSON request body (unknown fields are
// rejected: in a content-addressed API a typo'd knob would otherwise be
// silently ignored while the caller believes it changed the experiment).
func decodeSpec(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// APIError is the structured error envelope every /v1/* endpoint writes:
// a human-readable message, a stable machine code, the key when one was
// resolved, and per-sub-job detail on fan-out partial failures. Status
// codes are unchanged from the bare-text era; the envelope only replaces
// the body.
type APIError struct {
	Error string     `json:"error"`
	Code  string     `json:"code"`
	Key   string     `json:"key,omitempty"`
	Subs  []SubError `json:"subs,omitempty"`
}

// SubError is one failed sub-job inside a fan-out error envelope.
type SubError struct {
	Key   string `json:"key"`
	Error string `json:"error"`
}

// errCode maps a serving error to the envelope's stable code.
func errCode(status int, err error) string {
	switch {
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrNotOwned):
		return "not_owned"
	case errors.Is(err, ErrNotFound):
		return "not_found"
	case errors.Is(err, ErrBadKey):
		return "bad_key"
	case isFanoutErr(err):
		return "upstream_failed"
	case status == http.StatusBadRequest:
		return "bad_spec"
	}
	return "internal"
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorKeyed(w, status, "", err)
}

// writeErrorKeyed writes the envelope with the resolved key (when known)
// and, for fan-out failures, the per-sub-job detail.
func writeErrorKeyed(w http.ResponseWriter, status int, key string, err error) {
	env := APIError{Error: err.Error(), Code: errCode(status, err), Key: key}
	var fe *FanoutError
	if errors.As(err, &fe) {
		env.Subs = fe.Subs
		if env.Key == "" {
			env.Key = fe.Key
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(env)
}

// errStatus maps a serving error to its HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotOwned):
		return http.StatusMisdirectedRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadKey):
		return http.StatusBadRequest
	case isFanoutErr(err):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

func isFanoutErr(err error) bool {
	var fe *FanoutError
	return errors.As(err, &fe)
}

// writeResult writes a served payload with the cache headers the smoke
// tests (and operators) read: X-Mtmrd-Key, X-Mtmrd-Cache: hit|miss,
// X-Mtmrd-Source: cache|store|computed.
func (s *Service) writeResult(w http.ResponseWriter, res Result, err error) {
	if res.Key != "" {
		w.Header().Set("X-Mtmrd-Key", res.Key)
	}
	if err != nil {
		if errors.Is(err, ErrNotOwned) {
			w.Header().Set("X-Mtmrd-Owner", fmt.Sprint(s.cfg.Shard.Owner(res.Key)))
		}
		writeErrorKeyed(w, errStatus(err), res.Key, err)
		return
	}
	cache := "miss"
	if res.Hit {
		cache = "hit"
	}
	w.Header().Set("X-Mtmrd-Cache", cache)
	w.Header().Set("X-Mtmrd-Source", res.Source)
	w.Header().Set("Content-Type", "application/json")
	w.Write(res.Payload)
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec experiment.SweepSpec
	if err := decodeSpec(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := spec.Canonical(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamSweep(w, spec)
		return
	}
	res, err := s.Sweep(spec)
	if err != nil && !isSpecErr(err) {
		s.writeResult(w, res, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeResult(w, res, nil)
}

// streamLine is one NDJSON line of a streamed submission: progress events
// while the sweep runs, then a single result (or error) line.
type streamLine struct {
	Type     string          `json:"type"` // "progress" | "result" | "error"
	Progress *ProgressEvent  `json:"progress,omitempty"`
	Key      string          `json:"key,omitempty"`
	Cache    string          `json:"cache,omitempty"`
	Source   string          `json:"source,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// streamSweep serves a sweep as NDJSON: subscribe to the key's progress
// feed, kick the serve off, and interleave progress lines until the result
// lands. A hit simply streams its result line immediately.
func (s *Service) streamSweep(w http.ResponseWriter, spec experiment.SweepSpec) {
	key, err := spec.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	events, cancel := s.jobs.subscribe(key)
	defer cancel()

	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.Sweep(spec)
		done <- outcome{res, err}
	}()

	w.Header().Set("X-Mtmrd-Key", key)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		select {
		case ev := <-events:
			enc.Encode(streamLine{Type: "progress", Progress: &ev})
			flush()
		case out := <-done:
			if out.err != nil {
				enc.Encode(streamLine{Type: "error", Key: key, Error: out.err.Error()})
			} else {
				cache := "miss"
				if out.res.Hit {
					cache = "hit"
				}
				enc.Encode(streamLine{
					Type: "result", Key: key, Cache: cache,
					Source: out.res.Source, Result: out.res.Payload,
				})
			}
			flush()
			return
		}
	}
}

func (s *Service) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec experiment.RunSpec
	if err := decodeSpec(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Run(spec)
	if err != nil && isSpecErr(err) {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.writeResult(w, res, err)
}

// splitItem is one shardable sub-job of a partitioned sweep.
type splitItem struct {
	Key   string               `json:"key"`
	Owner int                  `json:"owner"`
	Spec  experiment.SweepSpec `json:"spec"`
}

func (s *Service) handleSplit(w http.ResponseWriter, r *http.Request) {
	var spec experiment.SweepSpec
	if err := decodeSpec(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	subs, err := spec.Split()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	items := make([]splitItem, len(subs))
	for i, sub := range subs {
		key, err := sub.Key()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		items[i] = splitItem{Key: key, Owner: s.cfg.Shard.Owner(key), Spec: sub}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"jobs": items, "shards": s.cfg.Shard.normalized().Count})
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !ValidKey(key) {
		writeErrorKeyed(w, http.StatusBadRequest, key, ErrBadKey)
		return
	}
	res, err := s.Lookup(key)
	s.writeResult(w, res, err)
}

func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.StatsSnapshot())
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, ErrDraining)
		return
	}
	w.Write([]byte("ok\n"))
}

// isSpecErr reports whether err is a client-side spec problem (400) rather
// than a serving failure.
func isSpecErr(err error) bool {
	return errors.Is(err, experiment.ErrSpecTopo) ||
		errors.Is(err, experiment.ErrSpecProtocol) ||
		errors.Is(err, experiment.ErrSpecSizes) ||
		errors.Is(err, experiment.ErrSpecNodes) ||
		errors.Is(err, experiment.ErrSpecKind) ||
		errors.Is(err, experiment.ErrSpecKindField) ||
		errors.Is(err, experiment.ErrSpecFractions) ||
		errors.Is(err, experiment.ErrSpecSpeeds) ||
		errors.Is(err, experiment.ErrSpecTiming) ||
		errors.Is(err, experiment.ErrSpecModel) ||
		errors.Is(err, experiment.ErrMobilityUnpaced) ||
		errors.Is(err, experiment.ErrMobilitySpeed)
}
