package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mtmrp/internal/experiment"
)

// tinySweep is a small but real sweep spec (2 sizes x 2 runs x 2
// protocols = 8 sessions) the serving tests compute in milliseconds.
func tinySweep() experiment.SweepSpec {
	return experiment.SweepSpec{
		Topo: "grid", Sizes: []int{5, 10}, Runs: 2, Seed: 42,
		Protocols: []string{"mtmrp", "odmrp"},
	}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.StorePath == "" {
		cfg.StorePath = filepath.Join(t.TempDir(), "results.store")
	}
	if cfg.SweepWorkers == 0 {
		cfg.SweepWorkers = 2
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// TestMissThenHitByteIdentical is the cache-correctness core: a miss
// computes, every later hit — from cache, from store, from a cold second
// instance — returns byte-identical payloads, and an independent fresh
// computation of the same spec produces those exact bytes.
func TestMissThenHitByteIdentical(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.store")
	svc := newTestService(t, Config{StorePath: path})
	spec := tinySweep()

	miss, err := svc.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Hit || miss.Source != "computed" {
		t.Fatalf("first submission = %+v, want a computed miss", miss)
	}
	hit, err := svc.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Hit || hit.Source != "cache" {
		t.Fatalf("second submission = source %q hit %v, want a cache hit", hit.Source, hit.Hit)
	}
	if !bytes.Equal(miss.Payload, hit.Payload) {
		t.Fatal("cache hit payload differs from the computed payload")
	}
	if miss.Key != hit.Key {
		t.Fatalf("keys diverged: %s vs %s", miss.Key, hit.Key)
	}

	// A completely fresh service (cold cache, no store) recomputes the
	// identical bytes — the determinism the cache key certifies.
	svc2 := newTestService(t, Config{StorePath: filepath.Join(dir, "other.store")})
	fresh, err := svc2.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Source != "computed" {
		t.Fatalf("fresh instance served from %q, want computed", fresh.Source)
	}
	if !bytes.Equal(miss.Payload, fresh.Payload) {
		t.Fatal("independent recomputation is not byte-identical")
	}

	// The payload parses and excludes anything nondeterministic.
	var pl SweepPayload
	if err := json.Unmarshal(miss.Payload, &pl); err != nil {
		t.Fatal(err)
	}
	if pl.Kind != "sweep" || pl.Key != miss.Key || len(pl.Curves) != 2 {
		t.Fatalf("payload = kind %q key %q curves %d", pl.Kind, pl.Key, len(pl.Curves))
	}
	if pl.Curves[0].Protocol != "mtmrp" || len(pl.Curves[0].Cells) != 2 {
		t.Fatalf("curve 0 = %q with %d cells", pl.Curves[0].Protocol, len(pl.Curves[0].Cells))
	}
}

// TestSingleflightCollapsesConcurrentSubmissions asserts the acceptance
// property directly: 8 concurrent identical submissions execute exactly
// one sweep. The compute is parked on a gate until all 7 duplicates have
// attached to the leader's flight, so the collapse is deterministic.
func TestSingleflightCollapsesConcurrentSubmissions(t *testing.T) {
	const submissions = 8
	gate := make(chan struct{})
	svc := newTestService(t, Config{
		Hooks: Hooks{ComputeStarted: func(string) { <-gate }},
	})
	spec := tinySweep()
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}

	results := make([]Result, submissions)
	errs := make([]error, submissions)
	var wg sync.WaitGroup
	for i := 0; i < submissions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Sweep(spec)
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.flights.Waiters(key) < submissions-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d duplicates attached to the flight", svc.flights.Waiters(key))
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := svc.computes.Load(); n != 1 {
		t.Fatalf("%d sweep executions for %d concurrent submissions, want exactly 1", n, submissions)
	}
	if n := svc.coalesced.Load(); n != submissions-1 {
		t.Errorf("%d submissions coalesced, want %d", n, submissions-1)
	}
	nShared := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i].Payload, results[0].Payload) {
			t.Fatalf("submission %d payload differs", i)
		}
		if results[i].Shared {
			nShared++
		}
	}
	if nShared != submissions-1 {
		t.Errorf("%d results marked shared, want %d", nShared, submissions-1)
	}
	if appends, _ := svc.store.Stats(); appends != 1 {
		t.Errorf("store got %d appends, want 1", appends)
	}
}

// TestLRUEvictionFallsBackToStore: with a 1-entry cache, computing a
// second spec evicts the first; re-requesting the first is served from the
// on-disk store (not recomputed), and a cold restart reloads it too.
func TestLRUEvictionFallsBackToStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	svc := newTestService(t, Config{StorePath: path, CacheEntries: 1})
	specA, specB := tinySweep(), tinySweep()
	specB.Seed = 43

	a1, err := svc.Sweep(specA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Sweep(specB); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, evictions := svc.cache.Stats(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (cache capacity 1)", evictions)
	}
	a2, err := svc.Sweep(specA)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Source != "store" || !a2.Hit {
		t.Fatalf("evicted entry served from %q, want store", a2.Source)
	}
	if !bytes.Equal(a1.Payload, a2.Payload) {
		t.Fatal("store payload differs from the computed payload")
	}
	if n := svc.computes.Load(); n != 2 {
		t.Fatalf("computes = %d, want 2 (the store served the repeat)", n)
	}

	// Cold restart on the same store file: still a hit, still identical.
	svc.Close()
	svc2, err := New(Config{StorePath: path, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	a3, err := svc2.Sweep(specA)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Source != "store" {
		t.Fatalf("restarted instance served from %q, want store", a3.Source)
	}
	if !bytes.Equal(a1.Payload, a3.Payload) {
		t.Fatal("restarted store payload differs")
	}
}

// TestCorruptStoreEntryRecomputed: a bit-flipped stored record reads as
// corrupt, the service recomputes byte-identical bytes and supersedes it.
func TestCorruptStoreEntryRecomputed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.store")
	svc := newTestService(t, Config{StorePath: path})
	spec := tinySweep()
	orig, err := svc.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Flip one byte inside the stored payload.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-40] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, err := New(Config{StorePath: path, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if _, err := svc2.store.Get(orig.Key); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted record read as %v, want ErrCorrupt", err)
	}
	res, err := svc2.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != "computed" {
		t.Fatalf("corrupt entry served from %q, want recomputed", res.Source)
	}
	if !bytes.Equal(orig.Payload, res.Payload) {
		t.Fatal("recomputation after corruption is not byte-identical")
	}
	// The fresh append superseded the bad record: reads are clean again.
	if got, err := svc2.store.Get(orig.Key); err != nil || !bytes.Equal(got, orig.Payload) {
		t.Fatalf("store after recompute: %v", err)
	}
}

// TestDrainServesHitsRefusesComputes pins graceful-drain semantics.
func TestDrainServesHitsRefusesComputes(t *testing.T) {
	svc := newTestService(t, Config{})
	cached := tinySweep()
	if _, err := svc.Sweep(cached); err != nil {
		t.Fatal(err)
	}
	svc.Drain()

	hit, err := svc.Sweep(cached)
	if err != nil || !hit.Hit {
		t.Fatalf("draining service refused a cached result: %+v, %v", hit, err)
	}
	fresh := tinySweep()
	fresh.Seed = 99
	if _, err := svc.Sweep(fresh); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining service accepted a new computation: %v", err)
	}
}

// TestRunSpecServing covers the single-session endpoint path end to end:
// miss, hit, byte identity, flat/grouped aliases sharing one cache slot.
func TestRunSpecServing(t *testing.T) {
	svc := newTestService(t, Config{})
	spec := experiment.RunSpec{GroupSize: 8, Protocol: "mtmrp", Seed: 5}
	miss, err := svc.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := svc.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Hit || !bytes.Equal(miss.Payload, hit.Payload) {
		t.Fatal("run spec repeat did not hit identically")
	}
	var pl RunPayload
	if err := json.Unmarshal(miss.Payload, &pl); err != nil {
		t.Fatal(err)
	}
	if pl.Kind != "run" || pl.Result.ReceiverCount != 8 {
		t.Fatalf("run payload = %+v", pl)
	}

	// A flat-alias spelling of an equivalent spec hits the same slot
	// without computing (the key-identity satellite, observed end to end).
	flat, grouped := specAliases()
	if _, err := svc.Run(grouped); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Run(flat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Error("flat alias spelling missed the grouped spelling's cache slot")
	}
}

// specAliases returns one session spelled through flat aliases and through
// grouped specs (no mobility, so it stays cheap).
func specAliases() (flat, grouped experiment.RunSpec) {
	base := experiment.RunSpec{GroupSize: 6, Protocol: "odmrp", Seed: 17}
	flat, grouped = base, base
	flat.MAC = "ideal"
	flat.DisableCollisions = true
	flat.PayloadLen = 96
	grouped.Radio = experiment.RadioSpec{MAC: "ideal", DisableCollisions: true}
	grouped.Traffic.PayloadLen = 96
	return flat, grouped
}

// TestShardOwnership pins key-range ownership: a 2-shard instance serves
// only its residue class and names the owner of the rest.
func TestShardOwnership(t *testing.T) {
	// Find two specs landing on different shards of a 2-way split.
	specs := make([]experiment.SweepSpec, 0, 2)
	var owned, foreign experiment.SweepSpec
	found := [2]bool{}
	for seed := uint64(1); seed < 50 && (!found[0] || !found[1]); seed++ {
		s := tinySweep()
		s.Seed = seed
		key, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		owner := Shard{Count: 2}.Owner(key)
		if !found[owner] {
			found[owner] = true
			if owner == 0 {
				owned = s
			} else {
				foreign = s
			}
			specs = append(specs, s)
		}
	}
	if len(specs) != 2 {
		t.Fatal("could not find keys on both shards")
	}

	svc := newTestService(t, Config{Shard: Shard{Index: 0, Count: 2}})
	if _, err := svc.Sweep(owned); err != nil {
		t.Fatalf("owned key refused: %v", err)
	}
	if _, err := svc.Sweep(foreign); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("foreign key accepted: %v", err)
	}

	// Ownership is a pure function of the key: every shard agrees.
	fk, _ := foreign.Key()
	if (Shard{Index: 1, Count: 2}).Owner(fk) != (Shard{Index: 0, Count: 2}).Owner(fk) {
		t.Error("shards disagree on ownership")
	}
	if !(Shard{Index: 1, Count: 2}).Owns(fk) {
		t.Error("owning shard does not own its key")
	}
	if !(Shard{}).Owns(fk) {
		t.Error("zero shard must own everything")
	}
}

// TestHTTPAPI drives the whole HTTP surface: miss-then-hit with the cache
// headers, byte-identical bodies, result fetch by key, split, stats,
// healthz, drain (503) and shard rejection (421).
func TestHTTPAPI(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	specJSON := `{"topo":"grid","sizes":[5,10],"runs":2,"seed":42,"protocols":["mtmrp","odmrp"]}`
	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	resp1, body1 := post("/v1/sweep", specJSON)
	if resp1.StatusCode != 200 || resp1.Header.Get("X-Mtmrd-Cache") != "miss" {
		t.Fatalf("first POST: status %d cache %q", resp1.StatusCode, resp1.Header.Get("X-Mtmrd-Cache"))
	}
	resp2, body2 := post("/v1/sweep", specJSON)
	if resp2.Header.Get("X-Mtmrd-Cache") != "hit" || resp2.Header.Get("X-Mtmrd-Source") != "cache" {
		t.Fatalf("second POST: cache %q source %q",
			resp2.Header.Get("X-Mtmrd-Cache"), resp2.Header.Get("X-Mtmrd-Source"))
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("hit body differs from miss body")
	}
	key := resp1.Header.Get("X-Mtmrd-Key")
	if key == "" || key != resp2.Header.Get("X-Mtmrd-Key") {
		t.Fatalf("key headers: %q vs %q", key, resp2.Header.Get("X-Mtmrd-Key"))
	}

	// Fetch by key (never computes).
	resp3, body3 := getResp(t, ts.URL+"/v1/result/"+key)
	if resp3.StatusCode != 200 || !bytes.Equal(body1, body3) {
		t.Fatalf("GET /v1/result: status %d, identical %v", resp3.StatusCode, bytes.Equal(body1, body3))
	}
	if resp, _ := getResp(t, ts.URL+"/v1/result/"+strings.Repeat("0", 64)); resp.StatusCode != 404 {
		t.Fatalf("GET unknown result: status %d, want 404", resp.StatusCode)
	}

	// Unknown fields and invalid specs are 400s.
	if resp, _ := post("/v1/sweep", `{"topoo":"grid"}`); resp.StatusCode != 400 {
		t.Fatalf("typo'd field: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post("/v1/sweep", `{"topo":"torus"}`); resp.StatusCode != 400 {
		t.Fatalf("bad topo: status %d, want 400", resp.StatusCode)
	}

	// Split returns one owned sub-job per size.
	respSplit, bodySplit := post("/v1/sweep/split", specJSON)
	if respSplit.StatusCode != 200 {
		t.Fatalf("split: status %d", respSplit.StatusCode)
	}
	var split struct {
		Jobs []struct {
			Key   string               `json:"key"`
			Owner int                  `json:"owner"`
			Spec  experiment.SweepSpec `json:"spec"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(bodySplit, &split); err != nil {
		t.Fatal(err)
	}
	if len(split.Jobs) != 2 || len(split.Jobs[0].Spec.Sizes) != 1 {
		t.Fatalf("split = %+v", split.Jobs)
	}

	// Stats reflect the serving above.
	var st Stats
	if _, b := getResp(t, ts.URL+"/v1/stats"); json.Unmarshal(b, &st) != nil {
		t.Fatal("stats did not parse")
	} else if st.Computes != 1 || st.CacheHits < 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Drain: healthz flips to 503, cached results still served, new
	// computations refused with 503.
	if resp, _ := getResp(t, ts.URL+"/healthz"); resp.StatusCode != 200 {
		t.Fatalf("healthz while serving: %d", resp.StatusCode)
	}
	svc.Drain()
	if resp, _ := getResp(t, ts.URL+"/healthz"); resp.StatusCode != 503 {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	if resp, _ := post("/v1/sweep", specJSON); resp.Header.Get("X-Mtmrd-Cache") != "hit" {
		t.Fatal("draining server no longer serves cached results")
	}
	if resp, _ := post("/v1/sweep", `{"topo":"grid","sizes":[5],"runs":1,"seed":77}`); resp.StatusCode != 503 {
		t.Fatalf("draining server accepted a new computation: %d", resp.StatusCode)
	}
}

// TestHTTPShardRejection pins the 421 path for keys outside the shard.
func TestHTTPShardRejection(t *testing.T) {
	svc := newTestService(t, Config{Shard: Shard{Index: 0, Count: 2}})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	for seed := uint64(1); seed < 50; seed++ {
		s := tinySweep()
		s.Seed = seed
		key, err := s.Key()
		if err != nil {
			t.Fatal(err)
		}
		if (Shard{Index: 0, Count: 2}).Owns(key) {
			continue
		}
		enc, _ := json.Marshal(s)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("foreign key: status %d, want 421", resp.StatusCode)
		}
		if resp.Header.Get("X-Mtmrd-Owner") != "1" {
			t.Fatalf("owner header = %q, want 1", resp.Header.Get("X-Mtmrd-Owner"))
		}
		return
	}
	t.Fatal("no foreign key found")
}

// TestHTTPStreaming checks the NDJSON progress path: a streamed miss ends
// in a result line whose payload equals the non-streamed body, and a
// streamed hit returns its result line immediately.
func TestHTTPStreaming(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := `{"topo":"grid","sizes":[5,10],"runs":4,"seed":7,"protocols":["mtmrp","odmrp"]}`
	stream := func() (lines []streamLine) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("stream content type %q", ct)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ln streamLine
			if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			lines = append(lines, ln)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return lines
	}

	first := stream()
	if len(first) == 0 {
		t.Fatal("empty stream")
	}
	last := first[len(first)-1]
	if last.Type != "result" || last.Cache != "miss" {
		t.Fatalf("final line = %+v, want a miss result", last)
	}
	for _, ln := range first[:len(first)-1] {
		if ln.Type != "progress" || ln.Progress == nil || ln.Progress.Total == 0 {
			t.Fatalf("non-progress interior line %+v", ln)
		}
	}

	second := stream()
	if len(second) != 1 || second[0].Type != "result" || second[0].Cache != "hit" {
		t.Fatalf("streamed repeat = %+v, want one immediate hit line", second)
	}
	if !bytes.Equal(second[0].Result, last.Result) {
		t.Fatal("streamed hit payload differs from the miss payload")
	}
}

// TestPrewarmedPoolsAreInvisible pins the pre-warm contract: a service
// with warmed pools serves byte-identical payloads to a cold one, and the
// warmed pools are actually reused (no extra pools built for a sweep that
// fits the bank).
func TestPrewarmedPoolsAreInvisible(t *testing.T) {
	cold := newTestService(t, Config{SweepWorkers: 2})
	warm := newTestService(t, Config{SweepWorkers: 2, WarmPools: 2})
	if free, created := warm.bank.Size(); free != 2 || created != 2 {
		t.Fatalf("bank after prewarm: free %d created %d", free, created)
	}
	spec := tinySweep()
	a, err := cold.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.Sweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Payload, b.Payload) {
		t.Fatal("pre-warmed pools changed the result bytes")
	}
	if free, created := warm.bank.Size(); free != 2 || created != 2 {
		t.Errorf("bank after sweep: free %d created %d, want the 2 warmed pools back", free, created)
	}
}

// TestErrorEnvelope pins the structured error body on every /v1/* failure
// path: same status codes as before, JSON envelope with a stable machine
// code instead of plain text.
func TestErrorEnvelope(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	decode := func(t *testing.T, b []byte) APIError {
		t.Helper()
		var env APIError
		if err := json.Unmarshal(b, &env); err != nil {
			t.Fatalf("error body is not an envelope: %v (%s)", err, b)
		}
		if env.Error == "" {
			t.Fatal("envelope has an empty error message")
		}
		return env
	}

	// Malformed key: rejected as bad_key before any lookup, not a 404.
	resp, b := getResp(t, ts.URL+"/v1/result/not-a-key")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: status %d, want 400", resp.StatusCode)
	}
	if env := decode(t, b); env.Code != "bad_key" {
		t.Errorf("malformed key: code %q, want bad_key", env.Code)
	}
	// Uppercase hex is malformed too: keys are canonical lowercase.
	resp, b = getResp(t, ts.URL+"/v1/result/"+strings.Repeat("A", 64))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("uppercase key: status %d, want 400", resp.StatusCode)
	}

	// Well-formed but absent key: still a 404, now with code not_found.
	absent := strings.Repeat("0", 64)
	resp, b = getResp(t, ts.URL+"/v1/result/"+absent)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key: status %d, want 404", resp.StatusCode)
	}
	if env := decode(t, b); env.Code != "not_found" || env.Key != absent {
		t.Errorf("absent key: code %q key %q, want not_found/%s", env.Code, env.Key, absent)
	}

	// Spec rejection: bad_spec.
	resp2, err := http.Post(ts.URL+"/v1/sweep", "application/json",
		strings.NewReader(`{"topo":"bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", resp2.StatusCode)
	}
	if env := decode(t, b); env.Code != "bad_spec" {
		t.Errorf("bad spec: code %q, want bad_spec", env.Code)
	}

	// Key owned by another shard: 421 with code not_owned.
	spec := tinySweep()
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	owner := Shard{Count: 2}.Owner(key)
	other := newTestService(t, Config{Shard: Shard{Index: 1 - owner, Count: 2}})
	ts2 := httptest.NewServer(other.Handler())
	defer ts2.Close()
	body, _ := json.Marshal(spec)
	resp2, err = http.Post(ts2.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("wrong shard: status %d, want 421", resp2.StatusCode)
	}
	if env := decode(t, b); env.Code != "not_owned" {
		t.Errorf("wrong shard: code %q, want not_owned", env.Code)
	}
	if got := resp2.Header.Get("X-Mtmrd-Owner"); got != fmt.Sprint(owner) {
		t.Errorf("X-Mtmrd-Owner = %q, want %d", got, owner)
	}
}

// TestSweepKindsOverHTTP round-trips the registry's fault and mobility
// kinds through POST /v1/sweep: the kind dispatches, the payload carries
// the kind's metric axis and canonical spec, and a repeat is a cache hit.
func TestSweepKindsOverHTTP(t *testing.T) {
	svc := newTestService(t, Config{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	cases := []struct {
		name    string
		body    string
		kind    string
		metrics []string
		rows    int
	}{
		{
			name:    "fault",
			body:    `{"kind":"fault","fail_fractions":[0,0.2],"runs":1,"group_size":5,"packets":2,"seed":7,"protocols":["mtmrp","odmrp"]}`,
			kind:    "fault",
			metrics: []string{"mean_pdr", "min_pdr", "repairs", "repair_time_ms"},
			rows:    2,
		},
		{
			name:    "mobility",
			body:    `{"kind":"mobility","speeds":[0,5],"pauses_ms":[0],"runs":1,"group_size":5,"packets":2,"seed":7,"protocols":["mtmrp","odmrp"]}`,
			kind:    "mobility",
			metrics: []string{"mean_pdr", "min_pdr", "control_tx", "repairs"},
			rows:    2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			first, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, first)
			}
			var pl SweepPayload
			if err := json.Unmarshal(first, &pl); err != nil {
				t.Fatal(err)
			}
			if pl.Kind != "sweep" || pl.Spec.Kind != tc.kind {
				t.Fatalf("payload kind %q spec kind %q, want sweep/%s", pl.Kind, pl.Spec.Kind, tc.kind)
			}
			if len(pl.Metrics) != len(tc.metrics) {
				t.Fatalf("metrics = %v, want %v", pl.Metrics, tc.metrics)
			}
			for i, m := range tc.metrics {
				if pl.Metrics[i] != m {
					t.Fatalf("metrics = %v, want %v", pl.Metrics, tc.metrics)
				}
			}
			if len(pl.Curves) != 2 || len(pl.Curves[0].Cells) != tc.rows ||
				len(pl.Curves[0].Cells[0]) != len(tc.metrics) {
				t.Fatalf("curves %d x %d rows, want 2 x %d", len(pl.Curves), len(pl.Curves[0].Cells), tc.rows)
			}

			resp, err = http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			second, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if c := resp.Header.Get("X-Mtmrd-Cache"); c != "hit" {
				t.Fatalf("repeat: X-Mtmrd-Cache = %q, want hit", c)
			}
			if !bytes.Equal(first, second) {
				t.Fatal("repeat payload diverged")
			}
		})
	}
}

func getResp(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}
