package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadEvents parses a JSONL event log written by Logger. Blank lines are
// skipped; a malformed line aborts with its line number.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary aggregates an event log for diagnostics.
type Summary struct {
	Events     int
	TxByType   map[string]int
	RxByType   map[string]int
	BytesOnAir int
	FirstT     float64
	LastT      float64
	// BusiestTx lists the top transmitting nodes as (node, frames).
	BusiestTx []NodeCount
}

// NodeCount pairs a node with a frame count.
type NodeCount struct {
	Node  int
	Count int
}

// Summarize computes the aggregate view of an event log.
func Summarize(events []Event) Summary {
	s := Summary{
		TxByType: map[string]int{},
		RxByType: map[string]int{},
	}
	perNode := map[int]int{}
	for i, e := range events {
		s.Events++
		if i == 0 || e.T < s.FirstT {
			s.FirstT = e.T
		}
		if e.T > s.LastT {
			s.LastT = e.T
		}
		switch e.Kind {
		case "tx":
			s.TxByType[e.Type]++
			s.BytesOnAir += e.Size
			perNode[e.Node]++
		case "rx":
			s.RxByType[e.Type]++
		}
	}
	for n, c := range perNode {
		s.BusiestTx = append(s.BusiestTx, NodeCount{Node: n, Count: c})
	}
	sort.Slice(s.BusiestTx, func(i, j int) bool {
		if s.BusiestTx[i].Count != s.BusiestTx[j].Count {
			return s.BusiestTx[i].Count > s.BusiestTx[j].Count
		}
		return s.BusiestTx[i].Node < s.BusiestTx[j].Node
	})
	return s
}

// Format renders the summary as a human-readable report.
func (s Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events:      %d (%.3fs .. %.3fs virtual)\n", s.Events, s.FirstT, s.LastT)
	fmt.Fprintf(&b, "bytes on air: %d\n", s.BytesOnAir)
	b.WriteString("transmissions by type:\n")
	for _, typ := range sortedKeys(s.TxByType) {
		fmt.Fprintf(&b, "  %-12s %6d tx %6d rx\n", typ, s.TxByType[typ], s.RxByType[typ])
	}
	if len(s.BusiestTx) > 0 {
		b.WriteString("busiest transmitters:\n")
		top := s.BusiestTx
		if len(top) > 5 {
			top = top[:5]
		}
		for _, nc := range top {
			fmt.Fprintf(&b, "  node %-5d %6d frames\n", nc.Node, nc.Count)
		}
	}
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
