package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sampleLog() string {
	return `{"t":0.1,"kind":"tx","node":0,"type":"DATA","from":0,"size":100,"uid":1}
{"t":0.2,"kind":"rx","node":1,"type":"DATA","from":0,"size":100,"uid":1}

{"t":0.3,"kind":"tx","node":1,"type":"DATA","from":1,"size":100,"uid":2}
{"t":0.4,"kind":"tx","node":1,"type":"HELLO","from":1,"size":32,"uid":3}
`
}

func TestReadEvents(t *testing.T) {
	events, err := ReadEvents(strings.NewReader(sampleLog()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4 (blank line skipped)", len(events))
	}
	if events[0].Kind != "tx" || events[0].Node != 0 || events[0].Size != 100 {
		t.Errorf("first event = %+v", events[0])
	}
}

func TestReadEventsBadLine(t *testing.T) {
	_, err := ReadEvents(strings.NewReader("{}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func TestSummarize(t *testing.T) {
	events, err := ReadEvents(strings.NewReader(sampleLog()))
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(events)
	if s.Events != 4 {
		t.Errorf("Events = %d", s.Events)
	}
	if s.TxByType["DATA"] != 2 || s.TxByType["HELLO"] != 1 {
		t.Errorf("TxByType = %v", s.TxByType)
	}
	if s.RxByType["DATA"] != 1 {
		t.Errorf("RxByType = %v", s.RxByType)
	}
	if s.BytesOnAir != 232 { // tx only: 100+100+32
		t.Errorf("BytesOnAir = %d", s.BytesOnAir)
	}
	if s.FirstT != 0.1 || s.LastT != 0.4 {
		t.Errorf("window = %v..%v", s.FirstT, s.LastT)
	}
	if len(s.BusiestTx) != 2 || s.BusiestTx[0].Node != 1 || s.BusiestTx[0].Count != 2 {
		t.Errorf("BusiestTx = %v", s.BusiestTx)
	}
}

func TestSummaryFormat(t *testing.T) {
	events, _ := ReadEvents(strings.NewReader(sampleLog()))
	out := Summarize(events).Format()
	for _, want := range []string{"events:", "DATA", "HELLO", "busiest"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTripThroughLoggerAndReader(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf)
	lg.log(Event{T: 1, Kind: "tx", Node: 3, Type: "DATA", From: 3, Size: 10, UID: 5})
	lg.log(Event{T: 2, Kind: "rx", Node: 4, Type: "DATA", From: 3, Size: 10, UID: 5})
	if lg.Err() != nil {
		t.Fatal(lg.Err())
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Node != 4 || events[1].UID != 5 {
		t.Errorf("round trip = %+v", events)
	}
}
