package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mtmrp/internal/geom"
	"mtmrp/internal/network"
	"mtmrp/internal/packet"
	"mtmrp/internal/topology"
)

func TestLoggerRecordsTxAndRx(t *testing.T) {
	topo, err := topology.Grid(2, 1, 30, 40)
	if err != nil {
		t.Fatal(err)
	}
	cfg := network.DefaultConfig(1)
	cfg.MAC = network.MACIdeal
	net := network.New(topo, cfg)
	var buf bytes.Buffer
	lg := NewLogger(&buf)
	lg.Attach(net)
	net.Nodes[0].Send(packet.NewHello(0, nil))
	net.Run()
	if lg.Err() != nil {
		t.Fatal(lg.Err())
	}
	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		events = append(events, e)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2 (tx + rx)", len(events))
	}
	if events[0].Kind != "tx" || events[0].Node != 0 || events[0].Type != "HELLO" {
		t.Errorf("tx event = %+v", events[0])
	}
	if events[1].Kind != "rx" || events[1].Node != 1 || events[1].From != 0 {
		t.Errorf("rx event = %+v", events[1])
	}
	if events[1].T < events[0].T {
		t.Error("rx before tx")
	}
}

func TestLoggerChainsHooks(t *testing.T) {
	topo, _ := topology.Grid(2, 1, 30, 40)
	cfg := network.DefaultConfig(1)
	cfg.MAC = network.MACIdeal
	net := network.New(topo, cfg)
	called := false
	net.OnTransmit = func(n *network.Node, p *packet.Packet) { called = true }
	lg := NewLogger(&bytes.Buffer{})
	lg.Attach(net)
	net.Nodes[0].Send(packet.NewHello(0, nil))
	net.Run()
	if !called {
		t.Error("previous hook not chained")
	}
}

func snapshotFixture() *Snapshot {
	pos := []geom.Point{
		{X: 0, Y: 0},     // source
		{X: 100, Y: 100}, // forwarder (extra)
		{X: 200, Y: 200}, // receiver
		{X: 200, Y: 0},   // receiver + forwarder
		{X: 0, Y: 200},   // idle
	}
	return NewSnapshot(200, pos, 0, []int{2, 3}, []int{1, 3})
}

func TestSnapshotRender(t *testing.T) {
	s := snapshotFixture()
	out := s.Render()
	for _, want := range []string{"S", "#", "x", "X", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Source is bottom-left: the 'S' must appear on the last grid row.
	lines := strings.Split(out, "\n")
	var sRow, xRow int
	for i, l := range lines {
		if strings.Contains(l, "S") && strings.HasPrefix(l, "|") {
			sRow = i
		}
		if strings.Contains(l, "x") && strings.HasPrefix(l, "|") {
			xRow = i
		}
	}
	if sRow <= xRow {
		t.Errorf("source row %d should be below receiver row %d (y-up rendering)", sRow, xRow)
	}
}

func TestSnapshotCounts(t *testing.T) {
	s := snapshotFixture()
	tx, extra := s.Counts()
	if tx != 3 { // source + 2 forwarders
		t.Errorf("transmissions = %d, want 3", tx)
	}
	if extra != 1 { // forwarder 1 only; forwarder 3 is a receiver
		t.Errorf("extra = %d, want 1", extra)
	}
}

func TestSnapshotExcludesSourceFromForwarders(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 100}}
	s := NewSnapshot(200, pos, 0, nil, []int{0, 1})
	tx, _ := s.Counts()
	if tx != 2 {
		t.Errorf("source listed as forwarder must not double-count: %d", tx)
	}
}

func TestSnapshotPriorityOverlap(t *testing.T) {
	// Two nodes mapping to the same cell: higher-priority glyph wins.
	pos := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}
	s := NewSnapshot(200, pos, 0, nil, nil)
	out := s.Render()
	if !strings.Contains(out, "S") {
		t.Error("source glyph lost to overlap")
	}
}
