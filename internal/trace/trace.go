// Package trace provides run observability: a structured event log
// (JSON-lines, one event per frame on the air or delivered) and an ASCII
// renderer for the field snapshots of the paper's Figures 9–10, where
// hollow circles are idle sensors, crosses are multicast receivers and
// filled markers are the forwarders a protocol recruited.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mtmrp/internal/bitset"
	"mtmrp/internal/geom"
	"mtmrp/internal/network"
	"mtmrp/internal/packet"
)

// Event is one logged frame event.
type Event struct {
	T    float64 `json:"t"`    // virtual time in seconds
	Kind string  `json:"kind"` // "tx" or "rx"
	Node int     `json:"node"` // transmitter or receiver
	Type string  `json:"type"` // frame type
	From int     `json:"from"` // last-hop sender
	Size int     `json:"size"`
	UID  uint64  `json:"uid"`
}

// Logger writes frame events as JSON lines. Attach to a network before
// running; Err returns the first write error, if any.
type Logger struct {
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewLogger creates a JSONL event logger.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, enc: json.NewEncoder(w)}
}

// Attach chains the logger into the network's observation hooks.
func (l *Logger) Attach(net *network.Network) {
	prevTx := net.OnTransmit
	prevRx := net.OnDeliver
	net.OnTransmit = func(n *network.Node, p *packet.Packet) {
		if prevTx != nil {
			prevTx(n, p)
		}
		l.log(Event{
			T: net.Sim.Now().Seconds(), Kind: "tx", Node: int(n.ID),
			Type: p.Type.String(), From: int(p.From), Size: p.Size, UID: p.UID,
		})
	}
	net.OnDeliver = func(n *network.Node, p *packet.Packet) {
		if prevRx != nil {
			prevRx(n, p)
		}
		l.log(Event{
			T: net.Sim.Now().Seconds(), Kind: "rx", Node: int(n.ID),
			Type: p.Type.String(), From: int(p.From), Size: p.Size, UID: p.UID,
		})
	}
}

func (l *Logger) log(e Event) {
	if l.err != nil {
		return
	}
	l.err = l.enc.Encode(e)
}

// Err returns the first encoding/write error encountered.
func (l *Logger) Err() error { return l.err }

// Snapshot renders a field snapshot in the style of Figures 9–10. The
// node sets are word-packed bitsets over the dense node indices.
type Snapshot struct {
	Side       float64
	Positions  []geom.Point
	Source     int
	Receivers  bitset.Set
	Forwarders bitset.Set // data transmitters other than the source
	Cols, Rows int        // character grid; zero values take 61x31
}

// NewSnapshot builds a snapshot over explicit sets.
func NewSnapshot(side float64, pos []geom.Point, source int, receivers, forwarders []int) *Snapshot {
	s := &Snapshot{
		Side:      side,
		Positions: pos,
		Source:    source,
	}
	for _, r := range receivers {
		s.Receivers.Set(r)
	}
	for _, f := range forwarders {
		if f != source {
			s.Forwarders.Set(f)
		}
	}
	return s
}

// Legend used by Render:
//
//	S  source            #  forwarder (extra node)
//	x  receiver          X  receiver acting as forwarder
//	.  idle sensor
func (s *Snapshot) Render() string {
	cols, rows := s.Cols, s.Rows
	if cols <= 0 {
		cols = 61
	}
	if rows <= 0 {
		rows = 31
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	// Priority per cell: S > X > # > x > .
	rank := func(b byte) int {
		switch b {
		case 'S':
			return 5
		case 'X':
			return 4
		case '#':
			return 3
		case 'x':
			return 2
		case '.':
			return 1
		default:
			return 0
		}
	}
	for i, p := range s.Positions {
		cx := int(p.X / s.Side * float64(cols-1))
		cy := int(p.Y / s.Side * float64(rows-1))
		if cx < 0 || cx >= cols || cy < 0 || cy >= rows {
			continue
		}
		var ch byte
		switch {
		case i == s.Source:
			ch = 'S'
		case s.Receivers.Test(i) && s.Forwarders.Test(i):
			ch = 'X'
		case s.Forwarders.Test(i):
			ch = '#'
		case s.Receivers.Test(i):
			ch = 'x'
		default:
			ch = '.'
		}
		// Y grows upward in the paper's plots; render row 0 at the top.
		row := rows - 1 - cy
		if rank(ch) > rank(grid[row][cx]) {
			grid[row][cx] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", cols))
	for _, line := range grid {
		fmt.Fprintf(&b, "|%s|\n", line)
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", cols))
	b.WriteString("S source   x receiver   # forwarder   X receiver+forwarder   . sensor\n")
	return b.String()
}

// Counts returns (transmissions, extraNodes) implied by the snapshot,
// matching the captions of Figures 9–10.
func (s *Snapshot) Counts() (transmissions, extraNodes int) {
	transmissions = 1 // the source
	s.Forwarders.Range(func(f int) {
		transmissions++
		if !s.Receivers.Test(f) {
			extraNodes++
		}
	})
	return transmissions, extraNodes
}
